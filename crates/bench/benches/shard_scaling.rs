//! Shard-scaling baseline at a ≥5k-entity population: queries per second of
//! the sharded index across shard counts {1, 2, 4, 8} × execution modes
//! {planned, cooperative, independent}, against the same datasets and query
//! batches.
//!
//! *Planned* is the PR 5 default — the cost-based planner seeds the shared
//! bound from the per-shard synopses, skips provably-irrelevant shards,
//! orders the rest most-promising-first and scans tiny shards
//! ([`PlannerConfig`]); *cooperative* drives every shard's resumable
//! executor under one [`SharedBound`] with a cold threshold (the PR 4
//! default); *independent* is the PR 3 baseline — every shard runs to
//! completion against its private threshold ([`BoundMode::Independent`]).
//! All three return bitwise-identical answers, so the comparison isolates
//! pure planning/pruning effects.
//!
//! Two workloads: *skewed* (the PR 4 hot-clique-over-weak-background
//! population, where bound sharing has pruning room) and *localized* (the
//! planner's best case: every background shard is provably skippable for a
//! hot query).  Criterion groups run the skewed workload; the JSON artifact
//! pass covers both.
//!
//! After the criterion groups, the harness re-measures the single-query
//! path once per configuration and emits **`BENCH_shard.json`** — QPS
//! alongside the executor work counters (nodes visited, subtrees pruned,
//! entities checked, bound updates, shards skipped).  The pass doubles as a
//! CI gate: it **panics** (failing the bench job) if planned answers ever
//! diverge from the unplanned oracle, or if the planner fails to skip at
//! least half the shards per hot query on the localized workload at 2+
//! shards.
//!
//! [`SharedBound`]: minsig::SharedBound
//! [`BoundMode::Independent`]: minsig::BoundMode
//! [`PlannerConfig`]: minsig::PlannerConfig

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use minsig::shard::ShardedSnapshot;
use minsig::{
    IndexConfig, PlannerConfig, QueryOptions, QueryStats, SchedulerConfig, ShardedMinSigIndex,
    TopKResult,
};
use minsig_bench::{planner_bench_workload, shard_bench_workload, SHARD_BENCH_ENTITIES};
use std::hint::black_box;
use std::time::Instant;
use trace_model::{EntityId, PaperAdm};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const K: usize = 10;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Mode {
    /// PR 5 default: synopsis-driven planning over the cooperative scheduler.
    Planned,
    /// PR 4 default: cooperative bound sharing, no planner.
    Cooperative,
    /// PR 3 baseline: private per-shard bounds, run-to-completion quanta.
    Independent,
}

const MODES: [(Mode, &str); 3] = [
    (Mode::Planned, "planned"),
    (Mode::Cooperative, "cooperative"),
    (Mode::Independent, "independent"),
];

fn run_query(
    snapshot: &ShardedSnapshot,
    query: EntityId,
    measure: &PaperAdm,
    mode: Mode,
) -> (Vec<TopKResult>, QueryStats) {
    let options = QueryOptions::default();
    match mode {
        Mode::Planned => snapshot
            .top_k_with_planner(
                query,
                K,
                measure,
                options,
                SchedulerConfig::default(),
                PlannerConfig::default(),
            )
            .expect("bench query answers"),
        Mode::Cooperative => snapshot
            .top_k_with_scheduler(query, K, measure, options, SchedulerConfig::default())
            .expect("bench query answers"),
        Mode::Independent => snapshot
            .top_k_with_scheduler(query, K, measure, options, SchedulerConfig::independent())
            .expect("bench query answers"),
    }
}

fn build_snapshots(workload: &minsig::testkit::Workload) -> Vec<(usize, ShardedSnapshot)> {
    let config = IndexConfig::with_hash_functions(32);
    SHARD_COUNTS
        .iter()
        .map(|&shards| {
            let index = ShardedMinSigIndex::build(&workload.sp, &workload.traces, config, shards)
                .expect("sharded bench index builds");
            (shards, index.snapshot())
        })
        .collect()
}

fn shard_scaling_qps(c: &mut Criterion) {
    // Criterion axes on the skewed population (hot clique holding each
    // other's top-k over a weak cold background); the queries are the hot
    // entities — the regime bound sharing and planning exist for.
    let (skewed, skewed_queries) = shard_bench_workload();
    let measure = skewed.measure();
    let snapshots = build_snapshots(&skewed);

    let mut group = c.benchmark_group("shard_scaling/batch");
    group.sample_size(10);
    for (shards, snapshot) in &snapshots {
        for (mode, mode_name) in MODES {
            group.throughput(Throughput::Elements(skewed_queries.len() as u64));
            group.bench_function(BenchmarkId::new(format!("{mode_name}/shards"), shards), |b| {
                b.iter(|| black_box(batch_query(snapshot, &skewed_queries, &measure, mode)))
            });
        }
    }
    group.finish();

    let mut group = c.benchmark_group("shard_scaling/single_query");
    group.sample_size(10);
    for (shards, snapshot) in &snapshots {
        for (mode, mode_name) in MODES {
            group.throughput(Throughput::Elements(skewed_queries.len() as u64));
            group.bench_function(BenchmarkId::new(format!("{mode_name}/shards"), shards), |b| {
                b.iter(|| {
                    for &query in &skewed_queries {
                        black_box(run_query(snapshot, query, &measure, mode));
                    }
                })
            });
        }
    }
    group.finish();

    // The JSON artifact covers both workloads and gates correctness.
    let (localized, localized_queries) = planner_bench_workload();
    let localized_snapshots = build_snapshots(&localized);
    let mut rows = Vec::new();
    emit_rows(&mut rows, "skewed", &snapshots, &skewed_queries, &measure);
    emit_rows(&mut rows, "localized", &localized_snapshots, &localized_queries, &measure);
    write_artifact(&rows, skewed_queries.len());
}

fn batch_query(
    snapshot: &ShardedSnapshot,
    queries: &[EntityId],
    measure: &PaperAdm,
    mode: Mode,
) -> Vec<(Vec<TopKResult>, QueryStats)> {
    let options = QueryOptions::default();
    match mode {
        Mode::Planned => snapshot
            .top_k_batch_with_planner(
                queries,
                K,
                measure,
                options,
                SchedulerConfig::default(),
                PlannerConfig::default(),
            )
            .expect("bench batch answers"),
        Mode::Cooperative => snapshot
            .top_k_batch_with_scheduler(queries, K, measure, options, SchedulerConfig::default())
            .expect("bench batch answers"),
        Mode::Independent => snapshot
            .top_k_batch_with_scheduler(
                queries,
                K,
                measure,
                options,
                SchedulerConfig::independent(),
            )
            .expect("bench batch answers"),
    }
}

/// One timed single-query-path pass per (workload, shard count, mode) with
/// summed executor counters, plus the two CI gates: planned answers must be
/// bitwise identical to the unplanned oracle on every query, and on the
/// localized workload the planner must skip at least half the shards per
/// query at 2+ shards.
fn emit_rows(
    rows: &mut Vec<String>,
    workload_name: &str,
    snapshots: &[(usize, ShardedSnapshot)],
    queries: &[EntityId],
    measure: &PaperAdm,
) {
    const PASSES: usize = 3;
    for (shards, snapshot) in snapshots {
        // The unplanned oracle answers, computed once per shard count.
        let oracle: Vec<Vec<TopKResult>> =
            queries.iter().map(|&q| run_query(snapshot, q, measure, Mode::Independent).0).collect();
        for (mode, mode_name) in MODES {
            // Best-of-N wall clock (standard min-time practice); counters
            // from the final pass.
            let mut best = f64::INFINITY;
            let mut work = QueryStats::default();
            for _ in 0..PASSES {
                work = QueryStats::default();
                let start = Instant::now();
                for (i, &query) in queries.iter().enumerate() {
                    let (results, stats) = run_query(snapshot, query, measure, mode);
                    assert_eq!(
                        results, oracle[i],
                        "{workload_name}/{mode_name}/{shards} shards: answers diverged \
                         from the unplanned oracle for query {query}"
                    );
                    black_box(&results);
                    work.absorb_work(&stats);
                }
                best = best.min(start.elapsed().as_secs_f64());
            }
            if workload_name == "localized" && mode == Mode::Planned && *shards >= 2 {
                assert!(
                    work.shards_skipped * 2 >= queries.len() * *shards,
                    "localized workload at {shards} shards: the planner skipped only \
                     {} shard-visits over {} queries (need ≥ half of {} per query)",
                    work.shards_skipped,
                    queries.len(),
                    shards
                );
            }
            let qps = queries.len() as f64 / best.max(1e-12);
            rows.push(format!(
                concat!(
                    "    {{\"workload\": \"{}\", \"shards\": {}, \"mode\": \"{}\", ",
                    "\"qps\": {:.1}, \"nodes_visited\": {}, \"subtrees_pruned\": {}, ",
                    "\"entities_checked\": {}, \"bound_updates\": {}, ",
                    "\"shards_skipped\": {}, \"planning_us\": {}}}"
                ),
                workload_name,
                shards,
                mode_name,
                qps,
                work.nodes_visited,
                work.subtrees_pruned,
                work.entities_checked,
                work.bound_updates,
                work.shards_skipped,
                work.planning_us,
            ));
        }
    }
}

fn write_artifact(rows: &[String], queries: usize) {
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"shard_scaling\",\n",
            "  \"population\": {},\n",
            "  \"queries\": {},\n",
            "  \"k\": {},\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        SHARD_BENCH_ENTITIES,
        queries,
        K,
        rows.join(",\n"),
    );
    // `cargo bench` runs with the package directory as cwd; anchor the
    // artifact at the workspace root, where CI picks it up.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shard.json");
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(
    name = shard_scaling;
    config = Criterion::default();
    targets = shard_scaling_qps
);
criterion_main!(shard_scaling);
