//! Shard-scaling baseline: queries per second of the sharded index across
//! shard counts {1, 2, 4, 8}, against the same dataset and query batch.
//!
//! Two axes per shard count: single-query latency-path QPS (`top_k`, the
//! rayon per-query shard fan-out) and batch-path QPS (`top_k_batch`, parallel
//! over queries with sequential per-query fan-out).  `Throughput::Elements`
//! makes the harness report queries/s directly, so future PRs can compare
//! shard-count scaling against this baseline without post-processing.
//!
//! Expect QPS to *fall* with shard count at this bench's small population:
//! every query still touches all N trees, each with weaker pruning than the
//! single big tree, plus per-shard fan-out overhead.  Sharding buys parallel
//! ingest / persistence / maintenance and per-machine population scale — this
//! bench exists to keep the query-side cost of that trade visible.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use minsig::IndexConfig;
use minsig::ShardedMinSigIndex;
use minsig_bench::{bench_dataset, bench_measure, bench_queries};
use std::hint::black_box;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const BATCH: usize = 64;
const K: usize = 10;

fn shard_scaling_qps(c: &mut Criterion) {
    let dataset = bench_dataset();
    let measure = bench_measure(&dataset);
    let queries = bench_queries(&dataset, BATCH);
    let config = IndexConfig::with_hash_functions(64);

    let mut group = c.benchmark_group("shard_scaling/batch");
    group.sample_size(10);
    for shards in SHARD_COUNTS {
        let index = ShardedMinSigIndex::build(dataset.sp_index(), &dataset.traces, config, shards)
            .expect("sharded bench index builds");
        let snapshot = index.snapshot();
        group.throughput(Throughput::Elements(BATCH as u64));
        group.bench_function(BenchmarkId::new("shards", shards), |b| {
            b.iter(|| black_box(snapshot.top_k_batch(&queries, K, &measure).unwrap()))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("shard_scaling/single_query");
    group.sample_size(10);
    for shards in SHARD_COUNTS {
        let index = ShardedMinSigIndex::build(dataset.sp_index(), &dataset.traces, config, shards)
            .expect("sharded bench index builds");
        let snapshot = index.snapshot();
        group.throughput(Throughput::Elements(queries.len() as u64));
        group.bench_function(BenchmarkId::new("shards", shards), |b| {
            b.iter(|| {
                for &query in &queries {
                    black_box(snapshot.top_k(query, K, &measure).unwrap());
                }
            })
        });
    }
    group.finish();
}

criterion_group!(
    name = shard_scaling;
    config = Criterion::default();
    targets = shard_scaling_qps
);
criterion_main!(shard_scaling);
