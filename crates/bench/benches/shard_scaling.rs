//! Shard-scaling baseline at a ≥5k-entity population: queries per second of
//! the sharded index across shard counts {1, 2, 4, 8} × bound modes
//! {cooperative, independent}, against the same dataset and query batch.
//!
//! *Cooperative* drives the per-shard resumable executors under one
//! [`SharedBound`] per query (the default scheduler); *independent* is the
//! PR 3 baseline — every shard runs to completion against its private
//! threshold ([`BoundMode::Independent`]).  Both return bitwise-identical
//! answers, so the comparison isolates pure scheduling/pruning effects:
//! cooperative top-k QPS should be at least the independent baseline at
//! every shard count, with strictly more pruned subtrees, because a shard
//! holding no strong candidate learns the global k-th degree from the shard
//! that does instead of grinding its own tree.
//!
//! Two criterion axes per (shard count, mode): single-query latency-path QPS
//! (`top_k_with_scheduler`, the rayon per-query shard fan-out) and batch-path
//! QPS (`top_k_batch_with_scheduler`, parallel over queries with sequential
//! cooperative per-query fan-out).  `Throughput::Elements` makes the harness
//! report queries/s directly.
//!
//! After the criterion groups, the harness re-measures the single-query path
//! once per configuration and emits **`BENCH_shard.json`** — QPS alongside
//! the executor work counters (nodes visited, subtrees pruned, entities
//! checked, bound updates) — so CI archives machine-readable evidence that
//! the pruning win is real, not asserted.
//!
//! [`SharedBound`]: minsig::SharedBound
//! [`BoundMode::Independent`]: minsig::BoundMode

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use minsig::shard::ShardedSnapshot;
use minsig::{
    BoundMode, IndexConfig, QueryOptions, QueryStats, SchedulerConfig, ShardedMinSigIndex,
};
use minsig_bench::{shard_bench_workload, SHARD_BENCH_ENTITIES};
use std::hint::black_box;
use std::time::Instant;
use trace_model::{EntityId, PaperAdm};

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];
const K: usize = 10;
const MODES: [(BoundMode, &str); 2] =
    [(BoundMode::Shared, "cooperative"), (BoundMode::Independent, "independent")];

/// Cooperative = the default scheduler; independent = the faithful PR 3
/// baseline (`SchedulerConfig::independent()`: run-to-completion quanta, so
/// it pays no round-robin overhead it never had).
fn scheduler(mode: BoundMode) -> SchedulerConfig {
    match mode {
        BoundMode::Shared => SchedulerConfig::default(),
        BoundMode::Independent => SchedulerConfig::independent(),
    }
}

fn shard_scaling_qps(c: &mut Criterion) {
    // The skewed population (hot clique holding each other's top-k over a
    // weak cold background); the queries are the hot entities — the regime
    // cooperative bound sharing exists for.
    let (workload, queries) = shard_bench_workload();
    let measure = workload.measure();
    let config = IndexConfig::with_hash_functions(32);

    // One build per shard count, shared by both criterion groups and the
    // JSON pass, so every number describes the same trees.
    let snapshots: Vec<(usize, ShardedSnapshot)> = SHARD_COUNTS
        .iter()
        .map(|&shards| {
            let index = ShardedMinSigIndex::build(&workload.sp, &workload.traces, config, shards)
                .expect("sharded bench index builds");
            (shards, index.snapshot())
        })
        .collect();

    let mut group = c.benchmark_group("shard_scaling/batch");
    group.sample_size(10);
    for (shards, snapshot) in &snapshots {
        for (mode, mode_name) in MODES {
            group.throughput(Throughput::Elements(queries.len() as u64));
            group.bench_function(BenchmarkId::new(format!("{mode_name}/shards"), shards), |b| {
                b.iter(|| {
                    black_box(
                        snapshot
                            .top_k_batch_with_scheduler(
                                &queries,
                                K,
                                &measure,
                                QueryOptions::default(),
                                scheduler(mode),
                            )
                            .unwrap(),
                    )
                })
            });
        }
    }
    group.finish();

    let mut group = c.benchmark_group("shard_scaling/single_query");
    group.sample_size(10);
    for (shards, snapshot) in &snapshots {
        for (mode, mode_name) in MODES {
            group.throughput(Throughput::Elements(queries.len() as u64));
            group.bench_function(BenchmarkId::new(format!("{mode_name}/shards"), shards), |b| {
                b.iter(|| {
                    for &query in &queries {
                        black_box(
                            snapshot
                                .top_k_with_scheduler(
                                    query,
                                    K,
                                    &measure,
                                    QueryOptions::default(),
                                    scheduler(mode),
                                )
                                .unwrap(),
                        );
                    }
                })
            });
        }
    }
    group.finish();

    emit_artifact(&snapshots, &queries, &measure);
}

/// One timed single-query-path pass per (shard count, mode) with summed
/// executor counters; written to `BENCH_shard.json` for the CI artifact.
fn emit_artifact(snapshots: &[(usize, ShardedSnapshot)], queries: &[EntityId], measure: &PaperAdm) {
    const PASSES: usize = 3;
    let mut rows = Vec::new();
    for (shards, snapshot) in snapshots {
        for (mode, mode_name) in MODES {
            // Best-of-N wall clock (standard min-time practice); counters
            // from the final pass.
            let mut best = f64::INFINITY;
            let mut work = QueryStats::default();
            for _ in 0..PASSES {
                work = QueryStats::default();
                let start = Instant::now();
                for &query in queries {
                    let (results, stats) = snapshot
                        .top_k_with_scheduler(
                            query,
                            K,
                            measure,
                            QueryOptions::default(),
                            scheduler(mode),
                        )
                        .expect("bench query answers");
                    black_box(results);
                    work.absorb_work(&stats);
                }
                best = best.min(start.elapsed().as_secs_f64());
            }
            let qps = queries.len() as f64 / best.max(1e-12);
            rows.push(format!(
                concat!(
                    "    {{\"shards\": {}, \"mode\": \"{}\", \"qps\": {:.1}, ",
                    "\"nodes_visited\": {}, \"subtrees_pruned\": {}, ",
                    "\"entities_checked\": {}, \"bound_updates\": {}}}"
                ),
                shards,
                mode_name,
                qps,
                work.nodes_visited,
                work.subtrees_pruned,
                work.entities_checked,
                work.bound_updates,
            ));
        }
    }
    let json = format!(
        concat!(
            "{{\n",
            "  \"bench\": \"shard_scaling\",\n",
            "  \"population\": {},\n",
            "  \"queries\": {},\n",
            "  \"k\": {},\n",
            "  \"results\": [\n{}\n  ]\n",
            "}}\n"
        ),
        SHARD_BENCH_ENTITIES,
        queries.len(),
        K,
        rows.join(",\n"),
    );
    // `cargo bench` runs with the package directory as cwd; anchor the
    // artifact at the workspace root, where CI picks it up.
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shard.json");
    match std::fs::write(path, &json) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}

criterion_group!(
    name = shard_scaling;
    config = Criterion::default();
    targets = shard_scaling_qps
);
criterion_main!(shard_scaling);
