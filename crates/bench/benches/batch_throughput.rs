//! Serving-throughput baseline for the unified query engine: queries per
//! second of `top_k_batch` over one shared snapshot, across batch sizes
//! {1, 16, 256} at 1 thread (sequential `top_k_join`) and N threads (the
//! rayon-parallel batch path).
//!
//! The `Throughput::Elements(batch)` declaration makes the harness report
//! elem/s — i.e. queries/s — directly, so future PRs can compare serving
//! throughput against this baseline without post-processing.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use minsig::{JoinOptions, MinSigIndex};
use minsig_bench::{bench_dataset, bench_measure, bench_queries};
use mobility::SynDataset;
use std::hint::black_box;
use trace_model::EntityId;

const BATCH_SIZES: [usize; 3] = [1, 16, 256];
const K: usize = 10;

fn fixture() -> (SynDataset, MinSigIndex) {
    let dataset = bench_dataset();
    let index = minsig_bench::bench_index(&dataset, 64);
    (dataset, index)
}

fn batch_of(dataset: &SynDataset, size: usize) -> Vec<EntityId> {
    // Deterministic probe set; entities repeat once the pool is exhausted so
    // every batch size is exactly `size` queries.
    let pool = bench_queries(dataset, size.min(dataset.traces.num_entities()));
    (0..size).map(|i| pool[i % pool.len()]).collect()
}

fn sequential_qps(c: &mut Criterion) {
    let (dataset, index) = fixture();
    let measure = bench_measure(&dataset);
    let snapshot = index.snapshot();
    let mut group = c.benchmark_group("batch_throughput/threads_1");
    group.sample_size(10);
    for size in BATCH_SIZES {
        let queries = batch_of(&dataset, size);
        group.throughput(Throughput::Elements(size as u64));
        group.bench_function(BenchmarkId::new("batch", size), |b| {
            b.iter(|| {
                let options = JoinOptions { k: K, threads: 1, ..JoinOptions::default() };
                black_box(snapshot.top_k_join(&queries, &measure, options).unwrap())
            })
        });
    }
    group.finish();
}

fn parallel_qps(c: &mut Criterion) {
    let (dataset, index) = fixture();
    let measure = bench_measure(&dataset);
    let snapshot = index.snapshot();
    let threads = rayon::current_num_threads();
    let mut group = c.benchmark_group(format!("batch_throughput/threads_{threads}"));
    group.sample_size(10);
    for size in BATCH_SIZES {
        let queries = batch_of(&dataset, size);
        group.throughput(Throughput::Elements(size as u64));
        group.bench_function(BenchmarkId::new("batch", size), |b| {
            b.iter(|| black_box(snapshot.top_k_batch(&queries, K, &measure).unwrap()))
        });
    }
    group.finish();
}

criterion_group!(
    name = batch_throughput;
    config = Criterion::default();
    targets = sequential_qps, parallel_qps
);
criterion_main!(batch_throughput);
