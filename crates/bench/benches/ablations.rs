//! Ablation benchmarks for the design choices called out in `DESIGN.md`:
//!
//! * hierarchical hasher mode (paper-exact exhaustive min vs. the scalable
//!   PathMax substitute);
//! * query bound tightness (level constraints on/off, branch accumulation on/off);
//! * signature width (hash-function count) on build and query cost;
//! * the MinSigTree against the brute-force scan and the bitmap baseline.

use baseline::{scan_top_k, BitmapIndex, BitmapIndexConfig};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use minsig::{HasherMode, IndexConfig, MinSigIndex, QueryOptions};
use minsig_bench::{bench_dataset, bench_measure, bench_queries};
use std::hint::black_box;

fn hasher_modes(c: &mut Criterion) {
    let dataset = bench_dataset();
    let mut group = c.benchmark_group("ablation_hasher_mode");
    group.sample_size(10);
    for (name, mode) in [("pathmax", HasherMode::PathMax), ("exhaustive", HasherMode::Exhaustive)] {
        group.bench_function(BenchmarkId::new("build", name), |b| {
            b.iter(|| {
                let config =
                    IndexConfig { hasher_mode: mode, ..IndexConfig::with_hash_functions(64) };
                black_box(MinSigIndex::build(dataset.sp_index(), &dataset.traces, config).unwrap())
            })
        });
    }
    group.finish();
}

fn bound_tightness(c: &mut Criterion) {
    let dataset = bench_dataset();
    let index = minsig_bench::bench_index(&dataset, 128);
    let measure = bench_measure(&dataset);
    let queries = bench_queries(&dataset, 5);
    let mut group = c.benchmark_group("ablation_query_bounds");
    group.sample_size(10);
    let variants = [
        ("full_bounds", QueryOptions::default()),
        (
            "no_level_constraints",
            QueryOptions { use_level_constraints: false, accumulate_down_branch: true },
        ),
        (
            "no_accumulation",
            QueryOptions { use_level_constraints: true, accumulate_down_branch: false },
        ),
    ];
    for (name, options) in variants {
        group.bench_function(name, |b| {
            b.iter(|| {
                for &q in &queries {
                    black_box(index.top_k_with_options(q, 10, &measure, options).unwrap());
                }
            })
        });
    }
    group.finish();
}

fn signature_width(c: &mut Criterion) {
    let dataset = bench_dataset();
    let measure = bench_measure(&dataset);
    let queries = bench_queries(&dataset, 5);
    let mut group = c.benchmark_group("ablation_signature_width");
    group.sample_size(10);
    for nh in [16u32, 64, 256] {
        let index = minsig_bench::bench_index(&dataset, nh);
        group.bench_function(BenchmarkId::new("query_top10", nh), |b| {
            b.iter(|| {
                for &q in &queries {
                    black_box(index.top_k(q, 10, &measure).unwrap());
                }
            })
        });
    }
    group.finish();
}

fn index_vs_baselines(c: &mut Criterion) {
    let dataset = bench_dataset();
    let index = minsig_bench::bench_index(&dataset, 128);
    let measure = bench_measure(&dataset);
    let queries = bench_queries(&dataset, 5);
    let sequences = index.sequences().clone();
    let bitmap =
        BitmapIndex::build(&sequences, BitmapIndexConfig { min_support: 3, num_clusters: 128 });
    let mut group = c.benchmark_group("ablation_index_vs_baselines");
    group.sample_size(10);
    group.bench_function("minsigtree_top10", |b| {
        b.iter(|| {
            for &q in &queries {
                black_box(index.top_k(q, 10, &measure).unwrap());
            }
        })
    });
    group.bench_function("bitmap_baseline_top10", |b| {
        b.iter(|| {
            for &q in &queries {
                black_box(bitmap.top_k(&sequences, q, 10, &measure));
            }
        })
    });
    group.bench_function("brute_force_scan_top10", |b| {
        b.iter(|| {
            for &q in &queries {
                black_box(scan_top_k(&sequences, q, 10, &measure));
            }
        })
    });
    group.finish();
}

criterion_group!(
    name = ablations;
    config = Criterion::default();
    targets = hasher_modes, bound_tightness, signature_width, index_vs_baselines
);
criterion_main!(ablations);
