//! Micro-benchmarks of the building blocks: signature computation, cell-set
//! algebra, hierarchical hashing, external sort and buffer-pool access.  These
//! are the hot paths identified by the Section 4.3 cost analysis and are the
//! first places to look when profiling a regression.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use minsig::{CellHashFamily, HasherMode, HierarchicalHasher, SeededHashFamily, SignatureList};
use minsig_bench::bench_dataset;
use std::hint::black_box;
use trace_model::{CellSet, CellSetSequence, StCell};
use trace_storage::{external_sort, PagedTraceStore, PoolConfig, TraceRecord, VirtualDisk};

fn signature_computation(c: &mut Criterion) {
    let dataset = bench_dataset();
    let sp = dataset.sp_index();
    let seqs = dataset.traces.cell_sequences(sp).unwrap();
    let (_, seq) = seqs.iter().next().unwrap();
    let mut group = c.benchmark_group("signature_computation");
    group.throughput(Throughput::Elements(seq.total_cells() as u64));
    for nh in [32u32, 128, 512] {
        let hasher =
            HierarchicalHasher::new(SeededHashFamily::new(nh, 1, 1 << 20), HasherMode::PathMax);
        group.bench_function(BenchmarkId::new("pathmax", nh), |b| {
            b.iter(|| black_box(SignatureList::build(sp, &hasher, seq)))
        });
    }
    group.finish();
}

fn hash_family(c: &mut Criterion) {
    let family = SeededHashFamily::new(256, 7, 1 << 24);
    let cells: Vec<StCell> = (0..1000u32).map(|i| StCell::new(i % 72, i * 31)).collect();
    let mut group = c.benchmark_group("hash_family");
    group.throughput(Throughput::Elements(cells.len() as u64));
    group.bench_function("hash_1000_cells_x_1_function", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for &cell in &cells {
                acc ^= family.hash_base(0, cell);
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn cell_set_algebra(c: &mut Criterion) {
    let a = CellSet::from_cells((0..2000u32).map(|i| StCell::new(i % 100, i * 3)));
    let b = CellSet::from_cells((0..2000u32).map(|i| StCell::new(i % 100, i * 5)));
    let mut group = c.benchmark_group("cell_set_algebra");
    group.throughput(Throughput::Elements((a.len() + b.len()) as u64));
    group.bench_function("intersection_len", |bencher| {
        bencher.iter(|| black_box(a.intersection_len(&b)))
    });
    group.bench_function("union", |bencher| bencher.iter(|| black_box(a.union(&b))));
    group.bench_function("difference", |bencher| bencher.iter(|| black_box(a.difference(&b))));
    group.finish();
}

fn sequence_projection(c: &mut Criterion) {
    let dataset = bench_dataset();
    let sp = dataset.sp_index();
    let entity = dataset.traces.entities().next().unwrap();
    let trace = dataset.traces.trace(entity).unwrap();
    let base = trace.base_cells(sp, 60).unwrap();
    let mut group = c.benchmark_group("sequence_projection");
    group.throughput(Throughput::Elements(base.len() as u64));
    group.bench_function("from_base_cells", |b| {
        b.iter(|| black_box(CellSetSequence::from_base_cells(sp, &base).unwrap()))
    });
    group.finish();
}

fn storage_paths(c: &mut Criterion) {
    let dataset = bench_dataset();
    let records: Vec<TraceRecord> = dataset
        .traces
        .iter()
        .flat_map(|(_, t)| t.instances().iter().map(TraceRecord::from_presence))
        .collect();
    let mut group = c.benchmark_group("storage");
    group.sample_size(10);
    group.throughput(Throughput::Elements(records.len() as u64));
    group.bench_function("external_sort", |b| {
        b.iter(|| {
            let disk = VirtualDisk::new();
            black_box(external_sort(&disk, records.clone(), 8))
        })
    });
    let store = PagedTraceStore::build(&dataset.traces, 8);
    let entities: Vec<_> = dataset.traces.entities().take(100).collect();
    group.bench_function("read_100_traces_via_pool", |b| {
        b.iter(|| {
            let pool = store.pool(PoolConfig::default());
            for &e in &entities {
                black_box(store.read_trace(&pool, e));
            }
        })
    });
    group.finish();
}

criterion_group!(
    name = microbench;
    config = Criterion::default();
    targets = signature_computation, hash_family, cell_set_algebra, sequence_projection, storage_paths
);
criterion_main!(microbench);
