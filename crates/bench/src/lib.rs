//! Shared fixtures for the Criterion benchmarks.
//!
//! The benches regenerate the paper's figures at a reduced, fixed scale so that
//! `cargo bench` finishes in minutes; the `experiments` binary runs the same code
//! at larger scales.  Keeping the fixture construction here (rather than in each
//! bench file) ensures every bench measures the same datasets.

use experiments::Scale;
use minsig::testkit::{HierarchySpec, PlannerLocalizedConfig, PruningAdversarialConfig, Workload};
use minsig::{IndexConfig, MinSigIndex};
use mobility::{SynConfig, SynDataset};
use trace_model::{EntityId, PaperAdm};

/// The fixed scale used by all benchmarks.
pub fn bench_scale() -> Scale {
    Scale::smoke()
}

/// A small but non-trivial benchmark dataset (deterministic).
pub fn bench_dataset() -> SynDataset {
    let mut config: SynConfig = bench_scale().syn_config();
    config.num_entities = 600;
    config.days = 4;
    SynDataset::generate(config).expect("bench dataset generates")
}

/// Number of entities in [`shard_bench_workload`].
pub const SHARD_BENCH_ENTITIES: u64 = 5_000;

/// Number of hot (high-overlap) entities in [`shard_bench_workload`]; the
/// shard-scaling bench queries exactly these.
pub const SHARD_BENCH_HOT: u64 = 64;

/// The ≥5k-entity skewed population for the shard-scaling bench, plus the
/// hot entity ids the bench queries.
///
/// This is the [`Workload::pruning_adversarial`] shape: a hot clique whose
/// members hold each other's entire top-k (all routing to one shard at the
/// bench's largest shard count) over a weak cold background — the population
/// where cross-shard bound sharing has real pruning room, so the bench
/// measures the cooperative scheduler's intended regime rather than noise.
/// Deterministic: same workload on every machine and run.
pub fn shard_bench_workload() -> (Workload, Vec<EntityId>) {
    Workload::pruning_adversarial(PruningAdversarialConfig {
        num_shards: 8,
        hot_entities: SHARD_BENCH_HOT,
        cold_entities: SHARD_BENCH_ENTITIES - SHARD_BENCH_HOT,
        itinerary_steps: 8,
        hierarchy: HierarchySpec::default(),
        seed: 42,
    })
}

/// The ≥5k-entity **localized** population for the shard-scaling bench: the
/// query planner's best case, plus the hot entity ids the bench queries.
///
/// This is the [`Workload::planner_localized`] shape — a hot clique holding
/// each other's entire top-k, all routing to one shard at the bench's
/// largest shard count, over a background of single-cell entities filling
/// the other shards.  Every background shard is provably skippable for a
/// hot query, so the bench measures the planner's intended regime: shard
/// skipping plus threshold seeding against the cooperative and independent
/// baselines.  Deterministic: same workload on every machine and run.
pub fn planner_bench_workload() -> (Workload, Vec<EntityId>) {
    Workload::planner_localized(PlannerLocalizedConfig {
        num_shards: 8,
        hot_entities: SHARD_BENCH_HOT,
        background_entities: SHARD_BENCH_ENTITIES - SHARD_BENCH_HOT,
        itinerary_steps: 8,
        hierarchy: HierarchySpec::default(),
        seed: 42,
    })
}

/// Builds an index over the benchmark dataset with `nh` hash functions.
pub fn bench_index(dataset: &SynDataset, nh: u32) -> MinSigIndex {
    MinSigIndex::build(dataset.sp_index(), &dataset.traces, IndexConfig::with_hash_functions(nh))
        .expect("bench index builds")
}

/// The default association measure for the benchmark dataset.
pub fn bench_measure(dataset: &SynDataset) -> PaperAdm {
    PaperAdm::default_for(dataset.sp_index().height() as usize)
}

/// Deterministic query entities for the benchmark dataset.
pub fn bench_queries(dataset: &SynDataset, n: usize) -> Vec<EntityId> {
    dataset.query_entities(n, 12345)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_bench_workload_is_the_documented_shape() {
        let (w, hot) = shard_bench_workload();
        assert_eq!(w.traces.num_entities() as u64, SHARD_BENCH_ENTITIES);
        assert_eq!(hot.len() as u64, SHARD_BENCH_HOT);
        // The whole hot clique lives in one shard at the largest bench count.
        let home = minsig::shard_of(hot[0], 8);
        assert!(hot.iter().all(|&e| minsig::shard_of(e, 8) == home));
    }

    #[test]
    fn planner_bench_workload_is_the_documented_shape() {
        let (w, hot) = planner_bench_workload();
        assert_eq!(w.traces.num_entities() as u64, SHARD_BENCH_ENTITIES);
        assert_eq!(hot.len() as u64, SHARD_BENCH_HOT);
        let home = minsig::shard_of(hot[0], 8);
        assert!(hot.iter().all(|&e| minsig::shard_of(e, 8) == home));
        // Background entities live in other shards with single-cell traces.
        let hot_set: std::collections::BTreeSet<EntityId> = hot.iter().copied().collect();
        for entity in w.traces.entities() {
            if !hot_set.contains(&entity) {
                assert_ne!(minsig::shard_of(entity, 8), home);
            }
        }
    }

    #[test]
    fn fixtures_are_consistent() {
        let dataset = bench_dataset();
        assert_eq!(dataset.traces.num_entities(), 600);
        let index = bench_index(&dataset, 16);
        assert_eq!(index.num_entities(), 600);
        let queries = bench_queries(&dataset, 4);
        assert_eq!(queries.len(), 4);
        let measure = bench_measure(&dataset);
        let (results, _) = index.top_k(queries[0], 1, &measure).unwrap();
        assert_eq!(results.len(), 1);
    }
}
