//! Shared fixtures for the Criterion benchmarks.
//!
//! The benches regenerate the paper's figures at a reduced, fixed scale so that
//! `cargo bench` finishes in minutes; the `experiments` binary runs the same code
//! at larger scales.  Keeping the fixture construction here (rather than in each
//! bench file) ensures every bench measures the same datasets.

use experiments::Scale;
use minsig::{IndexConfig, MinSigIndex};
use mobility::{SynConfig, SynDataset};
use trace_model::{EntityId, PaperAdm};

/// The fixed scale used by all benchmarks.
pub fn bench_scale() -> Scale {
    Scale::smoke()
}

/// A small but non-trivial benchmark dataset (deterministic).
pub fn bench_dataset() -> SynDataset {
    let mut config: SynConfig = bench_scale().syn_config();
    config.num_entities = 600;
    config.days = 4;
    SynDataset::generate(config).expect("bench dataset generates")
}

/// Builds an index over the benchmark dataset with `nh` hash functions.
pub fn bench_index(dataset: &SynDataset, nh: u32) -> MinSigIndex {
    MinSigIndex::build(dataset.sp_index(), &dataset.traces, IndexConfig::with_hash_functions(nh))
        .expect("bench index builds")
}

/// The default association measure for the benchmark dataset.
pub fn bench_measure(dataset: &SynDataset) -> PaperAdm {
    PaperAdm::default_for(dataset.sp_index().height() as usize)
}

/// Deterministic query entities for the benchmark dataset.
pub fn bench_queries(dataset: &SynDataset, n: usize) -> Vec<EntityId> {
    dataset.query_entities(n, 12345)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_consistent() {
        let dataset = bench_dataset();
        assert_eq!(dataset.traces.num_entities(), 600);
        let index = bench_index(&dataset, 16);
        assert_eq!(index.num_entities(), 600);
        let queries = bench_queries(&dataset, 4);
        assert_eq!(queries.len(), 4);
        let measure = bench_measure(&dataset);
        let (results, _) = index.top_k(queries[0], 1, &measure).unwrap();
        assert_eq!(results.len(), 1);
    }
}
