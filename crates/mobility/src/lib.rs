//! # mobility
//!
//! The hierarchical individual-mobility (IM) model of Chapter 6 of *Top-k Queries
//! over Digital Traces*, used for three purposes:
//!
//! 1. **Synthetic data generation** — the SYN dataset of the experiments is
//!    produced by simulating entities under the IM model of Song et al. extended
//!    with a spatial hierarchy ([`im`], [`hierarchy`], [`datasets`]);
//! 2. **The REAL-dataset substitute** — the thesis evaluates on a proprietary
//!    WiFi-handshake dataset from a telecommunications provider; [`datasets`]
//!    provides a generator parameterised to match the reported marginal shapes
//!    (4-level hierarchy, heavy-tailed visitation, skewed association degrees);
//! 3. **The analytical pruning-effectiveness model** — Equations 6.12–6.15, which
//!    predict the fraction of MinSigTree leaves a query can discard
//!    ([`analysis`]).
//!
//! All generators are fully deterministic given a seed.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod analysis;
pub mod datasets;
pub mod hierarchy;
pub mod im;
pub mod power;

pub use analysis::AnalyticalPeModel;
pub use datasets::{real_like_config, SynConfig, SynDataset};
pub use hierarchy::{HierarchyConfig, HierarchySpec};
pub use im::{ImConfig, ImSimulator, ReturnModel};
pub use power::{BoundedPowerLaw, ZipfSampler};
