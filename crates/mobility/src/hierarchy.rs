//! Spatial-hierarchy generation (Section 6.2, Equations 6.7–6.8).
//!
//! The analysis assumes the area of interest is an `L × L` square divided into a
//! grid of base spatial units.  The sp-index over those units is characterised by
//! two power laws:
//!
//! * **width** — the number of units at level `l` is `W_l = Q · l^a` with
//!   `Q = (L/L_bsu)^2 / m^a`, so that the base level has exactly one unit per grid
//!   cell;
//! * **relative density** — the sizes of the units at one level follow
//!   `D_{il} ∝ i^b`, i.e. some districts contain many more buildings than others.
//!
//! [`HierarchySpec::generate`] materialises an [`SpIndex`] satisfying both laws by
//! recursively partitioning the (row-major ordered) grid cells into contiguous
//! runs, which also keeps spatial units spatially coherent.

use serde::{Deserialize, Serialize};
use trace_model::{Level, ModelError, Result, SpIndex, SpIndexBuilder};

/// Parameters of the generated hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HierarchyConfig {
    /// Side length of the base-unit grid (`L / L_bsu`); the number of base units
    /// is `grid_side²`.
    pub grid_side: u32,
    /// Height `m` of the sp-index.
    pub levels: Level,
    /// Width exponent `a` (Equation 6.7); real point-of-interest hierarchies have
    /// `a ∈ [1, 2]`.
    pub width_exponent: f64,
    /// Density exponent `b` (Equation 6.8).
    pub density_exponent: f64,
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig { grid_side: 50, levels: 4, width_exponent: 2.0, density_exponent: 2.0 }
    }
}

/// The realised hierarchy: the widths per level and the generated [`SpIndex`].
#[derive(Debug, Clone)]
pub struct HierarchySpec {
    config: HierarchyConfig,
    widths: Vec<usize>,
    sp: SpIndex,
}

impl HierarchySpec {
    /// Generates a hierarchy from the configuration.
    pub fn generate(config: HierarchyConfig) -> Result<Self> {
        if config.grid_side == 0 {
            return Err(ModelError::InvalidHierarchy("grid_side must be positive".into()));
        }
        if config.levels == 0 {
            return Err(ModelError::InvalidHierarchy("levels must be positive".into()));
        }
        let n_base = (config.grid_side as usize).pow(2);
        let m = config.levels as usize;
        if n_base < m {
            return Err(ModelError::InvalidHierarchy(format!(
                "{n_base} base units cannot form {m} distinct levels"
            )));
        }

        let widths = level_widths(n_base, m, config.width_exponent);

        // Partition bottom-up in *sizes*: level m is the base units themselves;
        // every coarser level groups the previous level's units into contiguous
        // runs whose lengths follow the density power law.
        //
        // `groupings[l]` (for l in 0..m-1, i.e. levels 1..=m-1) holds, for each
        // unit at that level, how many level-(l+2) units it contains.
        let mut groupings: Vec<Vec<usize>> = Vec::with_capacity(m.saturating_sub(1));
        let mut lower_count = n_base;
        for level in (0..m - 1).rev() {
            let width = widths[level];
            let sizes = partition_sizes(lower_count, width, config.density_exponent);
            lower_count = width;
            groupings.push(sizes);
        }
        groupings.reverse();

        // Build the SpIndex top-down.
        let mut builder = SpIndexBuilder::new(config.levels);
        let mut current: Vec<trace_model::SpatialUnitId> = Vec::new();
        for _ in 0..widths[0] {
            current.push(builder.add_top_unit()?);
        }
        for level in 2..=m {
            let sizes = &groupings[level - 2];
            let mut next = Vec::with_capacity(widths[level - 1]);
            debug_assert_eq!(sizes.len(), current.len());
            for (&parent, &child_count) in current.iter().zip(sizes.iter()) {
                for _ in 0..child_count {
                    next.push(builder.add_child(parent)?);
                }
            }
            debug_assert_eq!(next.len(), widths[level - 1]);
            current = next;
        }
        let sp = builder.build()?;
        Ok(HierarchySpec { config, widths, sp })
    }

    /// The configuration used for generation.
    pub fn config(&self) -> HierarchyConfig {
        self.config
    }

    /// The number of units per level (level 1 first).
    pub fn widths(&self) -> &[usize] {
        &self.widths
    }

    /// The generated spatial index.
    pub fn sp_index(&self) -> &SpIndex {
        &self.sp
    }

    /// Consumes the spec, returning the spatial index.
    pub fn into_sp_index(self) -> SpIndex {
        self.sp
    }

    /// The grid coordinates `(x, y)` of a base unit ordinal (row-major layout).
    pub fn grid_coordinates(&self, base_ordinal: u32) -> (u32, u32) {
        let side = self.config.grid_side;
        (base_ordinal % side, base_ordinal / side)
    }

    /// The base ordinal of grid coordinates (clamped to the grid).
    pub fn ordinal_of(&self, x: i64, y: i64) -> u32 {
        let side = self.config.grid_side as i64;
        let cx = x.clamp(0, side - 1);
        let cy = y.clamp(0, side - 1);
        (cy * side + cx) as u32
    }
}

/// Equation 6.7: `W_l = Q · l^a`, normalised so the base level has exactly
/// `n_base` units, clamped to be strictly increasing and at least 1.
pub fn level_widths(n_base: usize, m: usize, a: f64) -> Vec<usize> {
    let q = n_base as f64 / (m as f64).powf(a);
    let mut widths: Vec<usize> =
        (1..=m).map(|l| ((q * (l as f64).powf(a)) as usize).max(1)).collect();
    widths[m - 1] = n_base;
    // Enforce monotone non-decreasing widths (the tree cannot widen upward) and
    // that every level has at least as many units as the one above it.
    for l in 1..m {
        if widths[l] < widths[l - 1] {
            widths[l] = widths[l - 1];
        }
    }
    // Every parent must have at least one child, so widths must not exceed n_base.
    for w in widths.iter_mut() {
        *w = (*w).min(n_base);
    }
    widths
}

/// Equation 6.8: split `total` items into `parts` contiguous groups whose sizes are
/// proportional to `i^b` (every group gets at least one item).
pub fn partition_sizes(total: usize, parts: usize, b: f64) -> Vec<usize> {
    assert!(parts >= 1, "need at least one part");
    assert!(total >= parts, "cannot split {total} items into {parts} non-empty parts");
    let weights: Vec<f64> = (1..=parts).map(|i| (i as f64).powf(b)).collect();
    let weight_sum: f64 = weights.iter().sum();
    let spare = total - parts;
    let mut sizes: Vec<usize> =
        weights.iter().map(|w| 1 + (w / weight_sum * spare as f64) as usize).collect();
    // Distribute rounding leftovers to the largest groups first.
    let mut assigned: usize = sizes.iter().sum();
    let mut i = parts;
    while assigned < total {
        i = if i == 0 { parts - 1 } else { i - 1 };
        sizes[i] += 1;
        assigned += 1;
    }
    debug_assert_eq!(sizes.iter().sum::<usize>(), total);
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn widths_follow_the_power_law_shape() {
        let widths = level_widths(2500, 4, 2.0);
        assert_eq!(widths.len(), 4);
        assert_eq!(widths[3], 2500);
        // Strictly non-decreasing and finer levels are wider.
        assert!(widths.windows(2).all(|w| w[0] <= w[1]));
        assert!(widths[0] < widths[3]);
        // With a = 2, level 2 should have about 4x the units of level 1.
        let ratio = widths[1] as f64 / widths[0] as f64;
        assert!((2.0..=6.0).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn widths_with_zero_exponent_are_flat_until_base() {
        let widths = level_widths(100, 3, 0.0);
        assert_eq!(widths[0], widths[1]);
        assert_eq!(widths[2], 100);
    }

    #[test]
    fn partition_sizes_sum_to_total_and_are_positive() {
        for (total, parts, b) in [(100usize, 7usize, 2.0), (10, 10, 1.5), (55, 3, 0.0)] {
            let sizes = partition_sizes(total, parts, b);
            assert_eq!(sizes.len(), parts);
            assert_eq!(sizes.iter().sum::<usize>(), total);
            assert!(sizes.iter().all(|&s| s >= 1));
        }
    }

    #[test]
    fn partition_sizes_skew_grows_with_b() {
        let flat = partition_sizes(1000, 10, 0.0);
        let skewed = partition_sizes(1000, 10, 2.0);
        let spread = |v: &[usize]| v.iter().max().unwrap() - v.iter().min().unwrap();
        assert!(spread(&skewed) > spread(&flat));
    }

    #[test]
    #[should_panic(expected = "non-empty parts")]
    fn partition_rejects_more_parts_than_items() {
        let _ = partition_sizes(3, 5, 1.0);
    }

    #[test]
    fn generated_hierarchy_matches_widths_and_is_valid() {
        let config = HierarchyConfig { grid_side: 20, levels: 4, ..HierarchyConfig::default() };
        let spec = HierarchySpec::generate(config).unwrap();
        let sp = spec.sp_index();
        assert_eq!(sp.height(), 4);
        assert_eq!(sp.num_base_units(), 400);
        assert_eq!(sp.width_per_level(), spec.widths().to_vec());
        // Every base unit has a full ancestor path.
        for &b in sp.base_units() {
            for level in 1..=4u8 {
                assert!(sp.ancestor_at_level(b, level).is_ok());
            }
        }
    }

    #[test]
    fn contiguous_partitions_give_contiguous_base_ranges() {
        let spec = HierarchySpec::generate(HierarchyConfig {
            grid_side: 10,
            levels: 3,
            ..HierarchyConfig::default()
        })
        .unwrap();
        let sp = spec.sp_index();
        for level in 1..3u8 {
            let mut covered = 0u32;
            for unit in sp.units_at_level(level) {
                let (lo, hi) = sp.base_range(unit).unwrap();
                assert!(hi > lo);
                covered += hi - lo;
            }
            assert_eq!(covered, sp.num_base_units() as u32, "level {level} must tile the grid");
        }
    }

    #[test]
    fn single_level_hierarchy_is_flat() {
        let spec = HierarchySpec::generate(HierarchyConfig {
            grid_side: 5,
            levels: 1,
            ..HierarchyConfig::default()
        })
        .unwrap();
        assert_eq!(spec.sp_index().height(), 1);
        assert_eq!(spec.sp_index().num_base_units(), 25);
    }

    #[test]
    fn degenerate_configs_are_rejected() {
        assert!(HierarchySpec::generate(HierarchyConfig {
            grid_side: 0,
            ..HierarchyConfig::default()
        })
        .is_err());
        assert!(HierarchySpec::generate(HierarchyConfig {
            grid_side: 1,
            levels: 4,
            ..HierarchyConfig::default()
        })
        .is_err());
        assert!(HierarchySpec::generate(HierarchyConfig {
            grid_side: 5,
            levels: 0,
            ..HierarchyConfig::default()
        })
        .is_err());
    }

    #[test]
    fn grid_coordinate_round_trip() {
        let spec = HierarchySpec::generate(HierarchyConfig {
            grid_side: 10,
            levels: 2,
            ..HierarchyConfig::default()
        })
        .unwrap();
        for ordinal in [0u32, 5, 42, 99] {
            let (x, y) = spec.grid_coordinates(ordinal);
            assert_eq!(spec.ordinal_of(x as i64, y as i64), ordinal);
        }
        // Clamping keeps out-of-grid coordinates inside.
        assert_eq!(spec.ordinal_of(-5, 3), spec.ordinal_of(0, 3));
        assert_eq!(spec.ordinal_of(100, 100), spec.ordinal_of(9, 9));
    }
}
