//! The analytical pruning-effectiveness model of Section 6.3
//! (Equations 6.12–6.15).
//!
//! Given the dataset's scale parameters (number of base spatial units `n`, number
//! of base temporal units `t`, expected ST-cells per entity `c`), the index
//! parameters (number of hash functions `nh`) and a query-difficulty parameter
//! (`nc`, the minimum number of shared cells an entity needs to beat the expected
//! k-th association degree), the model predicts which fraction of MinSigTree
//! leaves a top-k query can discard.
//!
//! The derivation follows the paper with one refinement: instead of the
//! approximate per-value probability of Equation 6.12 we use the exact CDF of the
//! minimum of `c` i.i.d. uniform hash values, which is numerically stable for
//! large hash ranges (the predicted curves are indistinguishable at the paper's
//! parameter values).
//!
//! Reported **PE is the fraction of leaves pruned** (higher is better, matching
//! the prose "high PE"); Definition 5's `(|E'|-k)/|E|` is the complement and is
//! also exposed as [`PePrediction::fraction_checked`].

use serde::{Deserialize, Serialize};

/// Inputs of the analytical model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AnalyticalPeModel {
    /// Size of the hash range (`n × t` in the paper: base units × temporal units).
    pub hash_range: u64,
    /// Expected number of base ST-cells per entity (`|seq^m_a|`).
    pub cells_per_entity: u64,
    /// Number of hash functions (`nh`).
    pub num_hash_functions: u32,
    /// Minimum number of cells an entity must share with the query to possibly
    /// beat the expected k-th association degree (`nc`).
    pub min_shared_cells: u64,
    /// Number of sub-ranges used to discretise the hash range (`nr`).
    pub num_subranges: u32,
}

/// The model's output.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PePrediction {
    /// Fraction of leaves pruned (higher is better).
    pub fraction_pruned: f64,
    /// Fraction of leaves that must still be checked (Definition 5 without the
    /// `-k` correction).
    pub fraction_checked: f64,
}

impl AnalyticalPeModel {
    /// A model parameterised from dataset statistics.
    pub fn new(
        hash_range: u64,
        cells_per_entity: u64,
        num_hash_functions: u32,
        min_shared_cells: u64,
    ) -> Self {
        AnalyticalPeModel {
            hash_range: hash_range.max(2),
            cells_per_entity: cells_per_entity.max(1),
            num_hash_functions: num_hash_functions.max(1),
            min_shared_cells: min_shared_cells.max(1),
            num_subranges: 200,
        }
    }

    /// CDF of a single signature coordinate (the minimum of `c` uniform draws over
    /// `[0, R)`): `P(sig ≤ x) = 1 − ((R − x − 1)/R)^c`.
    fn min_cdf(&self, x: f64) -> f64 {
        let r = self.hash_range as f64;
        let c = self.cells_per_entity as f64;
        if x < 0.0 {
            return 0.0;
        }
        if x >= r - 1.0 {
            return 1.0;
        }
        1.0 - ((r - x - 1.0) / r).powf(c)
    }

    /// CDF of the routing value (Equation 6.13): the routing index holds the
    /// maximum of the `nh` signature coordinates, so
    /// `P(SIG[r] ≤ x) = P(sig ≤ x)^{nh}`.
    fn routing_cdf(&self, x: f64) -> f64 {
        self.min_cdf(x).powf(self.num_hash_functions as f64)
    }

    /// Equation 6.14: probability that at least `nc` of the query's `c` cells hash
    /// *above* the routing value `x`, i.e. the node cannot be discarded.
    fn non_prunable_probability(&self, x: f64) -> f64 {
        let r = self.hash_range as f64 - 1.0;
        let p_above = ((r - x) / r).clamp(0.0, 1.0);
        let c = self.cells_per_entity;
        let nc = self.min_shared_cells.min(c);
        // P(X >= nc) where X ~ Binomial(c, p_above).
        1.0 - binomial_cdf(c, p_above, nc.saturating_sub(1))
    }

    /// Equation 6.15: the predicted pruning effectiveness.
    pub fn predict(&self) -> PePrediction {
        let r = self.hash_range as f64;
        let nr = self.num_subranges as usize;
        let step = r / nr as f64;
        let mut fraction_checked = 0.0;
        let mut prev_cdf = 0.0;
        for j in 0..nr {
            let hi = (j as f64 + 1.0) * step - 1.0;
            let cdf = self.routing_cdf(hi);
            let v_j = (cdf - prev_cdf).max(0.0);
            prev_cdf = cdf;
            if v_j == 0.0 {
                continue;
            }
            // Use the upper boundary of the sub-range as its representative, as in
            // the paper's V[j]·q(R[j]) sum.
            fraction_checked += v_j * self.non_prunable_probability(hi);
        }
        let fraction_checked = fraction_checked.clamp(0.0, 1.0);
        PePrediction { fraction_pruned: 1.0 - fraction_checked, fraction_checked }
    }
}

/// `P(X ≤ k)` for `X ~ Binomial(n, p)`, computed in log space for stability.
pub fn binomial_cdf(n: u64, p: f64, k: u64) -> f64 {
    if p <= 0.0 {
        return 1.0;
    }
    if p >= 1.0 {
        return if k >= n { 1.0 } else { 0.0 };
    }
    let k = k.min(n);
    let mut total = 0.0;
    for x in 0..=k {
        total += binomial_pmf(n, p, x);
    }
    total.min(1.0)
}

/// `P(X = k)` for `X ~ Binomial(n, p)`.
pub fn binomial_pmf(n: u64, p: f64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    let ln = ln_choose(n, k) + k as f64 * p.ln() + (n - k) as f64 * (1.0 - p).ln();
    ln.exp()
}

/// `ln(n choose k)` via log-factorials.
pub fn ln_choose(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    ln_factorial(n) - ln_factorial(k) - ln_factorial(n - k)
}

/// `ln(n!)` using the exact sum for small `n` and Stirling's series otherwise.
pub fn ln_factorial(n: u64) -> f64 {
    if n < 2 {
        return 0.0;
    }
    if n <= 256 {
        return (2..=n).map(|i| (i as f64).ln()).sum();
    }
    let n = n as f64;
    // Stirling with the 1/(12n) correction: accurate to ~1e-9 for n > 256.
    n * n.ln() - n + 0.5 * (2.0 * std::f64::consts::PI * n).ln() + 1.0 / (12.0 * n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_factorial_matches_direct_computation() {
        for n in [0u64, 1, 2, 5, 10, 50, 170] {
            let direct: f64 = (2..=n).map(|i| (i as f64).ln()).sum();
            assert!((ln_factorial(n) - direct).abs() < 1e-9, "n = {n}");
        }
        // Stirling branch continuity.
        let a = ln_factorial(256);
        let b = ln_factorial(257);
        assert!(b > a);
        assert!((b - a - 257f64.ln()).abs() < 1e-6);
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        let n = 40;
        let p = 0.3;
        let total: f64 = (0..=n).map(|k| binomial_pmf(n, p, k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn binomial_cdf_monotone_and_bounded() {
        let n = 25;
        let p = 0.4;
        let mut prev = 0.0;
        for k in 0..=n {
            let c = binomial_cdf(n, p, k);
            assert!(c >= prev - 1e-12);
            assert!(c <= 1.0 + 1e-12);
            prev = c;
        }
        assert!((binomial_cdf(n, p, n) - 1.0).abs() < 1e-9);
        assert_eq!(binomial_cdf(10, 0.0, 0), 1.0);
        assert_eq!(binomial_cdf(10, 1.0, 9), 0.0);
        assert_eq!(binomial_cdf(10, 1.0, 10), 1.0);
    }

    #[test]
    fn prediction_is_a_probability() {
        let model = AnalyticalPeModel::new(250_000 * 720, 500, 1000, 5);
        let p = model.predict();
        assert!((0.0..=1.0).contains(&p.fraction_pruned));
        assert!((p.fraction_pruned + p.fraction_checked - 1.0).abs() < 1e-12);
    }

    #[test]
    fn more_hash_functions_prune_more() {
        // Figure 7.3: PE improves with the number of hash functions, with
        // diminishing returns.  nc is the number of cells the expected k-th best
        // answer shares with the query; for the co-mover-style associations the
        // paper targets this is close to the per-entity cell count.
        let pe =
            |nh: u32| AnalyticalPeModel::new(10_000 * 720, 300, nh, 295).predict().fraction_pruned;
        let p200 = pe(200);
        let p1000 = pe(1000);
        let p2000 = pe(2000);
        assert!(p1000 > p200, "{p1000} > {p200}");
        assert!(p2000 >= p1000);
        assert!(p2000 - p1000 < p1000 - p200, "diminishing returns expected");
    }

    #[test]
    fn harder_queries_prune_less() {
        // A smaller nc (fewer shared cells needed to be a contender) means more
        // leaves must be checked.
        let pe =
            |nc: u64| AnalyticalPeModel::new(10_000 * 720, 300, 1000, nc).predict().fraction_pruned;
        assert!(pe(200) < pe(290));
        assert!(pe(290) < pe(299));
    }

    #[test]
    fn pe_is_insensitive_to_scaling_entities() {
        // Section 6.4: PE depends on nh and the per-entity cell count, not on the
        // number of entities; the model has no |E| input at all, so check that
        // scaling the hash range and cells together (same density) barely moves it.
        let small = AnalyticalPeModel::new(1_000 * 720, 200, 500, 4).predict().fraction_pruned;
        let large = AnalyticalPeModel::new(10_000 * 720, 200, 500, 4).predict().fraction_pruned;
        assert!((small - large).abs() < 0.2, "PE should be roughly scale free: {small} vs {large}");
    }

    #[test]
    fn degenerate_inputs_are_clamped() {
        let model = AnalyticalPeModel::new(0, 0, 0, 0);
        assert!(model.hash_range >= 2);
        assert!(model.cells_per_entity >= 1);
        assert!(model.num_hash_functions >= 1);
        assert!(model.min_shared_cells >= 1);
        let p = model.predict();
        assert!((0.0..=1.0).contains(&p.fraction_pruned));
    }
}
