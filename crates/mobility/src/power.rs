//! Heavy-tailed samplers used by the individual mobility model.
//!
//! The IM model of Section 6.1 is built entirely out of power laws: pause
//! durations (Equation 6.1), jump displacements (Equation 6.3) and visit
//! frequencies (Equation 6.4).  This module provides a bounded power-law sampler
//! (inverse-CDF) and a Zipf rank sampler, both deterministic under a seeded RNG.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A continuous power-law distribution `P(x) ∝ x^{-(1+exponent)}` truncated to
/// `[min, max]`, sampled by inverse-CDF.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundedPowerLaw {
    exponent: f64,
    min: f64,
    max: f64,
}

impl BoundedPowerLaw {
    /// Creates the sampler.
    ///
    /// # Panics
    /// Panics when `min <= 0`, `max <= min`, or `exponent < 0`.
    pub fn new(exponent: f64, min: f64, max: f64) -> Self {
        assert!(min > 0.0, "power law minimum must be positive");
        assert!(max > min, "power law maximum must exceed the minimum");
        assert!(exponent >= 0.0, "power law exponent must be non-negative");
        BoundedPowerLaw { exponent, min, max }
    }

    /// The tail exponent (`β`, `α`, ... in the paper's notation).
    pub fn exponent(&self) -> f64 {
        self.exponent
    }

    /// Lower truncation bound.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Upper truncation bound.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // pdf ∝ x^{-a} with a = 1 + exponent. For a != 1 the inverse CDF over
        // [min, max] is ((min^(1-a) - u (min^(1-a) - max^(1-a)))^(1/(1-a))).
        let a = 1.0 + self.exponent;
        let u: f64 = rng.gen_range(0.0..1.0);
        if (a - 1.0).abs() < 1e-12 {
            // a == 1: log-uniform.
            return self.min * (self.max / self.min).powf(u);
        }
        let one_minus_a = 1.0 - a;
        let lo = self.min.powf(one_minus_a);
        let hi = self.max.powf(one_minus_a);
        (lo - u * (lo - hi)).powf(1.0 / one_minus_a)
    }

    /// The analytical mean of the truncated distribution (used by tests and by
    /// the analytical PE model to estimate the expected number of cells per
    /// entity).
    pub fn mean(&self) -> f64 {
        let a = 1.0 + self.exponent;
        // ∫ x·x^-a dx / ∫ x^-a dx over [min, max].
        let num = if (a - 2.0).abs() < 1e-12 {
            (self.max / self.min).ln()
        } else {
            (self.max.powf(2.0 - a) - self.min.powf(2.0 - a)) / (2.0 - a)
        };
        let den = if (a - 1.0).abs() < 1e-12 {
            (self.max / self.min).ln()
        } else {
            (self.max.powf(1.0 - a) - self.min.powf(1.0 - a)) / (1.0 - a)
        };
        num / den
    }
}

/// A Zipf sampler over ranks `1..=n`: `P(rank = y) ∝ y^{-ζ}` (Equation 6.4).
///
/// The sampler precomputes cumulative weights and draws by binary search, so the
/// per-sample cost is `O(log n)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ZipfSampler {
    zeta: f64,
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Creates a sampler over `n >= 1` ranks with exponent `zeta >= 0`.
    pub fn new(n: usize, zeta: f64) -> Self {
        assert!(n >= 1, "zipf needs at least one rank");
        assert!(zeta >= 0.0, "zipf exponent must be non-negative");
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0;
        for y in 1..=n {
            total += (y as f64).powf(-zeta);
            cumulative.push(total);
        }
        ZipfSampler { zeta, cumulative }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Always false (the constructor requires `n >= 1`).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// The exponent ζ.
    pub fn zeta(&self) -> f64 {
        self.zeta
    }

    /// Draws a rank in `1..=n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let u: f64 = rng.gen_range(0.0..total);
        match self.cumulative.binary_search_by(|c| c.partial_cmp(&u).expect("finite")) {
            Ok(idx) => idx + 2.min(self.cumulative.len()).max(1),
            Err(idx) => idx + 1,
        }
        .min(self.cumulative.len())
    }

    /// Probability of rank `y` (1-based).
    pub fn pmf(&self, y: usize) -> f64 {
        assert!((1..=self.len()).contains(&y), "rank out of range");
        let total = *self.cumulative.last().expect("non-empty");
        (y as f64).powf(-self.zeta) / total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn power_law_samples_stay_in_bounds() {
        let law = BoundedPowerLaw::new(0.8, 1.0, 100.0);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = law.sample(&mut rng);
            assert!((1.0..=100.0).contains(&x), "sample {x} out of bounds");
        }
    }

    #[test]
    fn heavier_tails_have_larger_means() {
        // A smaller exponent puts more mass on large values.
        let light = BoundedPowerLaw::new(1.5, 1.0, 1000.0);
        let heavy = BoundedPowerLaw::new(0.3, 1.0, 1000.0);
        assert!(heavy.mean() > light.mean());
    }

    #[test]
    fn empirical_mean_tracks_analytical_mean() {
        let law = BoundedPowerLaw::new(0.8, 1.0, 200.0);
        let mut rng = StdRng::seed_from_u64(42);
        let n = 200_000;
        let sum: f64 = (0..n).map(|_| law.sample(&mut rng)).sum();
        let empirical = sum / n as f64;
        let analytical = law.mean();
        let rel_err = (empirical - analytical).abs() / analytical;
        assert!(rel_err < 0.05, "empirical {empirical} vs analytical {analytical}");
    }

    #[test]
    fn most_samples_are_small() {
        let law = BoundedPowerLaw::new(1.0, 1.0, 10_000.0);
        let mut rng = StdRng::seed_from_u64(3);
        let below_ten =
            (0..10_000).filter(|_| law.sample(&mut rng) < 10.0).count() as f64 / 10_000.0;
        assert!(below_ten > 0.7, "a power law should concentrate near the minimum: {below_ten}");
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn power_law_rejects_zero_minimum() {
        let _ = BoundedPowerLaw::new(1.0, 0.0, 10.0);
    }

    #[test]
    fn zipf_prefers_low_ranks() {
        let zipf = ZipfSampler::new(50, 1.2);
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = vec![0usize; 51];
        for _ in 0..50_000 {
            let rank = zipf.sample(&mut rng);
            assert!((1..=50).contains(&rank));
            counts[rank] += 1;
        }
        assert!(counts[1] > counts[10]);
        assert!(counts[1] > counts[50] * 5);
    }

    #[test]
    fn zipf_with_zero_exponent_is_uniform() {
        let zipf = ZipfSampler::new(10, 0.0);
        for y in 1..=10 {
            assert!((zipf.pmf(y) - 0.1).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_pmf_sums_to_one() {
        let zipf = ZipfSampler::new(30, 1.7);
        let sum: f64 = (1..=30).map(|y| zipf.pmf(y)).sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(zipf.len(), 30);
        assert!(!zipf.is_empty());
        assert_eq!(zipf.zeta(), 1.7);
    }

    #[test]
    fn zipf_single_rank_always_returns_one() {
        let zipf = ZipfSampler::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..100 {
            assert_eq!(zipf.sample(&mut rng), 1);
        }
    }

    #[test]
    #[should_panic(expected = "rank out of range")]
    fn zipf_pmf_rejects_rank_zero() {
        let _ = ZipfSampler::new(5, 1.0).pmf(0);
    }
}
