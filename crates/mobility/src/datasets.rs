//! Synthetic dataset generators: the SYN dataset of Section 7.1 and a substitute
//! for the proprietary REAL (WiFi-handshake) dataset.
//!
//! The thesis generates SYN with the hierarchical IM model at a scale of 100 M
//! entities over 250 K locations for 30 days; the REAL dataset is 30 M devices
//! over ~77 K WiFi hotspots organised in a 4-level sp-index.  Neither scale is
//! reachable (or necessary) on a single laptop, and the REAL data is proprietary,
//! so both are *substituted* by the same generator at configurable scale:
//!
//! * [`SynConfig::default`] mirrors the paper's default mobility parameters
//!   (α=0.6, β=0.8, γ=0.2, ζ=1.2, ρ=0.6, a=b=2, m=4) at laptop scale;
//! * [`real_like_config`] mimics the REAL dataset's shape: a denser hotspot grid,
//!   higher locality (WiFi handshakes cluster around home/work/commute), and more
//!   detections per device.
//!
//! The paper's own scalability argument (Section 6.4) is that pruning
//! effectiveness is independent of the number of entities and of the per-entity
//! trace length, so shrinking the scale preserves the shapes of all reported
//! curves.

use crate::hierarchy::{HierarchyConfig, HierarchySpec};
use crate::im::{ImConfig, ImSimulator};
use rand::{rngs::StdRng, Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use trace_model::{EntityId, Result, SpIndex, TraceSet};

/// Configuration of a synthetic dataset.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SynConfig {
    /// Number of entities to simulate.
    pub num_entities: usize,
    /// Simulation length in days.
    pub days: u32,
    /// Spatial hierarchy parameters (grid size, height `m`, exponents `a`, `b`).
    pub hierarchy: HierarchyConfig,
    /// Mobility parameters (α, β, γ, ζ, ρ, ...).
    pub mobility: ImConfig,
    /// Raw ticks (minutes) per base temporal unit; 60 makes the base temporal
    /// unit an hour, as in the paper.
    pub ticks_per_unit: u64,
    /// RNG seed; the same seed always produces the same dataset.
    pub seed: u64,
    /// Fraction of entities that are "co-movers": each one shadows another
    /// entity's movements with some noise, which guarantees that strongly
    /// associated pairs exist (families, couples, colleagues — the associations
    /// the paper's motivating applications look for).
    pub comover_fraction: f64,
    /// Probability that a co-mover copies a given presence instance of its
    /// companion (the rest of its trace is independent).
    pub comover_fidelity: f64,
    /// Observation skew: each entity is *observed* (its presences recorded) with
    /// a per-entity probability `u^observation_skew`, `u ~ Uniform(0, 1]`.
    ///
    /// Real detection datasets (WiFi handshakes, check-ins) are heavily skewed —
    /// a few devices are seen constantly, most only a handful of times — and that
    /// skew is what makes the MinSigTree's pruning bite (sparsely observed
    /// entities have large signature values and are discarded wholesale).  `0.0`
    /// disables the skew (every presence is recorded, the raw IM model).
    pub observation_skew: f64,
}

impl Default for SynConfig {
    fn default() -> Self {
        SynConfig {
            num_entities: 2_000,
            days: 7,
            hierarchy: HierarchyConfig::default(),
            mobility: ImConfig::default(),
            ticks_per_unit: 60,
            seed: 42,
            comover_fraction: 0.2,
            comover_fidelity: 0.7,
            observation_skew: 1.5,
        }
    }
}

impl SynConfig {
    /// A tiny configuration for unit tests and doc examples (hundreds of
    /// entities, small grid) that still exercises every code path.
    pub fn tiny() -> Self {
        SynConfig {
            num_entities: 200,
            days: 3,
            hierarchy: HierarchyConfig { grid_side: 16, levels: 3, ..HierarchyConfig::default() },
            ..SynConfig::default()
        }
    }

    /// Total simulated ticks.
    pub fn total_ticks(&self) -> u64 {
        self.days as u64 * 24 * 60
    }
}

/// A substitute configuration for the REAL WiFi-handshake dataset: 4-level
/// hierarchy, stronger locality, longer observation window.
pub fn real_like_config(num_entities: usize, seed: u64) -> SynConfig {
    SynConfig {
        num_entities,
        days: 14,
        hierarchy: HierarchyConfig {
            grid_side: 64,
            levels: 4,
            width_exponent: 1.6,
            density_exponent: 2.0,
        },
        mobility: ImConfig {
            // WiFi detections: more frequent, more local, heavier preferential
            // return (home/work dominate).
            alpha: 1.2,
            beta: 0.8,
            gamma: 0.4,
            zeta: 1.5,
            rho: 0.5,
            ..ImConfig::default()
        },
        ticks_per_unit: 60,
        seed,
        comover_fraction: 0.25,
        comover_fidelity: 0.8,
        observation_skew: 2.0,
    }
}

/// A generated dataset: the spatial hierarchy and the traces.
#[derive(Debug)]
pub struct SynDataset {
    /// The generator configuration.
    pub config: SynConfig,
    /// The realised hierarchy specification.
    pub hierarchy: HierarchySpec,
    /// The generated digital traces.
    pub traces: TraceSet,
}

impl SynDataset {
    /// Generates a dataset from a configuration.
    pub fn generate(config: SynConfig) -> Result<Self> {
        let hierarchy = HierarchySpec::generate(config.hierarchy)?;
        let mut rng = StdRng::seed_from_u64(config.seed);
        let sim = ImSimulator::new(&hierarchy, config.mobility);
        let total_ticks = config.total_ticks();
        let num_base = hierarchy.sp_index().num_base_units() as u32;

        let mut traces = TraceSet::new(config.ticks_per_unit);
        let num_comovers = (config.num_entities as f64 * config.comover_fraction) as usize;
        let num_independent = config.num_entities - num_comovers;

        // Independent entities.  Each entity's presences are recorded with a
        // per-entity observation probability drawn from a skewed distribution
        // (most devices are seen rarely; a few are seen constantly).
        for e in 0..num_independent {
            let start = rng.gen_range(0..num_base);
            let trace = sim.simulate_entity(&mut rng, EntityId(e as u64), start, total_ticks);
            let observe_probability = if config.observation_skew <= 0.0 {
                1.0
            } else {
                let u: f64 = rng.gen_range(f64::EPSILON..=1.0);
                u.powf(config.observation_skew)
            };
            let mut observed = trace_model::DigitalTrace::new();
            for pi in trace.instances() {
                if rng.gen_bool(observe_probability) {
                    observed.push(*pi);
                }
            }
            // Keep at least the first presence so no generated entity is empty.
            if observed.is_empty() {
                if let Some(first) = trace.instances().first() {
                    observed.push(*first);
                }
            }
            traces.insert_trace(EntityId(e as u64), observed);
        }

        // Co-movers: each shadows a random independent entity.
        for i in 0..num_comovers {
            let entity = EntityId((num_independent + i) as u64);
            let companion = EntityId(rng.gen_range(0..num_independent.max(1)) as u64);
            let mut trace = trace_model::DigitalTrace::new();
            if let Some(companion_trace) = traces.get(companion) {
                for pi in companion_trace.instances() {
                    if rng.gen_bool(config.comover_fidelity) {
                        trace.push(trace_model::PresenceInstance::new(entity, pi.unit, pi.period));
                    }
                }
            }
            // Fill the rest of the co-mover's time with independent movement.
            let start = rng.gen_range(0..num_base);
            let own = sim.simulate_entity(&mut rng, entity, start, total_ticks / 4);
            for pi in own.instances() {
                trace.push(*pi);
            }
            traces.insert_trace(entity, trace);
        }

        Ok(SynDataset { config, hierarchy, traces })
    }

    /// The spatial index of the dataset.
    pub fn sp_index(&self) -> &SpIndex {
        self.hierarchy.sp_index()
    }

    /// Deterministically samples `n` query entities (entities with non-empty
    /// traces), used by the experiment harness.
    pub fn query_entities(&self, n: usize, seed: u64) -> Vec<EntityId> {
        let all: Vec<EntityId> =
            self.traces.iter().filter(|(_, t)| !t.is_empty()).map(|(e, _)| e).collect();
        if all.is_empty() {
            return Vec::new();
        }
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n).map(|_| all[rng.gen_range(0..all.len())]).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_model::{AssociationMeasure, PaperAdm};

    #[test]
    fn tiny_dataset_generates_all_entities() {
        let ds = SynDataset::generate(SynConfig::tiny()).unwrap();
        assert_eq!(ds.traces.num_entities(), 200);
        assert_eq!(ds.sp_index().height(), 3);
        assert!(ds.traces.total_presence_instances() > 200);
    }

    #[test]
    fn generation_is_deterministic_under_a_seed() {
        let a = SynDataset::generate(SynConfig::tiny()).unwrap();
        let b = SynDataset::generate(SynConfig::tiny()).unwrap();
        assert_eq!(a.traces.total_presence_instances(), b.traces.total_presence_instances());
        for (ea, eb) in a.traces.iter().zip(b.traces.iter()) {
            assert_eq!(ea.0, eb.0);
            assert_eq!(ea.1.instances(), eb.1.instances());
        }
        let c = SynDataset::generate(SynConfig { seed: 7, ..SynConfig::tiny() }).unwrap();
        let differs =
            a.traces.iter().zip(c.traces.iter()).any(|(x, y)| x.1.instances() != y.1.instances());
        assert!(differs, "different seeds should differ");
    }

    #[test]
    fn comovers_create_strong_associations() {
        let config = SynConfig { comover_fraction: 0.3, ..SynConfig::tiny() };
        let ds = SynDataset::generate(config).unwrap();
        let sp = ds.sp_index();
        let seqs = ds.traces.cell_sequences(sp).unwrap();
        let measure = PaperAdm::default_for(sp.height() as usize);
        // The maximum pairwise degree of the first co-mover against everyone else
        // should be substantially higher than the typical pairwise degree.
        let num_independent = (200.0 * 0.7) as u64;
        let comover = EntityId(num_independent);
        let comover_seq = &seqs[&comover];
        let mut best = 0.0f64;
        let mut sum = 0.0f64;
        let mut count = 0usize;
        for (e, seq) in &seqs {
            if *e == comover {
                continue;
            }
            let d = measure.degree(comover_seq, seq);
            best = best.max(d);
            sum += d;
            count += 1;
        }
        let mean = sum / count as f64;
        assert!(best > 0.0, "the co-mover must be associated with someone");
        assert!(
            best > 5.0 * mean,
            "co-mover association should stand out: best {best} mean {mean}"
        );
    }

    #[test]
    fn real_like_config_has_four_levels_and_more_locality() {
        let cfg = real_like_config(500, 1);
        assert_eq!(cfg.hierarchy.levels, 4);
        assert!(cfg.mobility.alpha > SynConfig::default().mobility.alpha);
        assert_eq!(cfg.num_entities, 500);
    }

    #[test]
    fn query_entities_are_reproducible_and_valid() {
        let ds = SynDataset::generate(SynConfig::tiny()).unwrap();
        let q1 = ds.query_entities(10, 3);
        let q2 = ds.query_entities(10, 3);
        assert_eq!(q1, q2);
        assert_eq!(q1.len(), 10);
        for e in q1 {
            assert!(ds.traces.contains(e));
        }
    }

    #[test]
    fn total_ticks_accounts_for_days() {
        let cfg = SynConfig { days: 30, ..SynConfig::tiny() };
        assert_eq!(cfg.total_ticks(), 30 * 24 * 60);
    }
}
