//! The individual mobility (IM) model of Section 6.1.
//!
//! Each entity alternates between *staying* at a base spatial unit for a
//! power-law-distributed duration (Equation 6.1) and *jumping*.  A jump either
//! explores a new unit — with probability `ρ S^{-γ}` where `S` is the number of
//! distinct units visited so far (Equation 6.2), landing at a power-law-distributed
//! displacement from the current position (Equation 6.3) — or returns to a
//! previously visited unit with probability proportional to its visit-frequency
//! rank (Equation 6.4).  The emergent statistics `S(t) ∼ t^µ` and
//! `⟨Δx²(t)⟩ ∼ t^ν` (Equations 6.5–6.6) are *consequences* of the first four laws
//! and are checked by this module's tests rather than being parameters.

use crate::hierarchy::HierarchySpec;
use crate::power::{BoundedPowerLaw, ZipfSampler};
use rand::Rng;
use serde::{Deserialize, Serialize};
use trace_model::{DigitalTrace, EntityId, Period, PresenceInstance};

/// How a returning jump chooses its destination.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ReturnModel {
    /// Preferential return: the probability of returning to a unit is
    /// proportional to the number of previous visits (the mechanism of the
    /// original Song et al. model; the `f_y ∼ y^{-ζ}` law emerges).
    Preferential,
    /// Rank-based return: the visit-frequency rank is drawn from a Zipf
    /// distribution with the configured exponent ζ, matching Equation 6.4
    /// directly.  This is the default because it exposes ζ as an explicit knob
    /// for the Figure 7.4(e) sensitivity sweep.
    ZipfRank,
}

/// Parameters of the IM model (Section 6.1 notation).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ImConfig {
    /// Pause-duration exponent β ∈ (0, 1].
    pub beta: f64,
    /// Exploration probability scale ρ ∈ (0, 1].
    pub rho: f64,
    /// Exploration decay exponent γ ≥ 0.
    pub gamma: f64,
    /// Jump-displacement exponent α ∈ (0, 2].
    pub alpha: f64,
    /// Visit-frequency exponent ζ ≥ 0.
    pub zeta: f64,
    /// Return-destination model.
    pub return_model: ReturnModel,
    /// Minimum pause duration in ticks (e.g. minutes).
    pub min_pause_ticks: u64,
    /// Maximum pause duration in ticks.
    pub max_pause_ticks: u64,
    /// Mean gap between leaving one unit and arriving at the next, in ticks
    /// (travel time, uniformly drawn from `0..=2×mean`).
    pub mean_travel_ticks: u64,
}

impl Default for ImConfig {
    fn default() -> Self {
        // The paper's default "normal mobility pattern": α=0.6, β=0.8, γ=0.2,
        // ζ=1.2, ρ=0.6 (Section 7.1).  Ticks are minutes.
        ImConfig {
            beta: 0.8,
            rho: 0.6,
            gamma: 0.2,
            alpha: 0.6,
            zeta: 1.2,
            return_model: ReturnModel::ZipfRank,
            min_pause_ticks: 15,
            max_pause_ticks: 60 * 24,
            mean_travel_ticks: 20,
        }
    }
}

impl ImConfig {
    /// Validates the parameter ranges of Section 6.1.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.beta > 0.0 && self.beta <= 1.0) {
            return Err(format!("beta must be in (0, 1], got {}", self.beta));
        }
        if !(self.rho > 0.0 && self.rho <= 1.0) {
            return Err(format!("rho must be in (0, 1], got {}", self.rho));
        }
        if self.gamma < 0.0 {
            return Err(format!("gamma must be >= 0, got {}", self.gamma));
        }
        if !(self.alpha > 0.0 && self.alpha <= 2.0) {
            return Err(format!("alpha must be in (0, 2], got {}", self.alpha));
        }
        if self.zeta < 0.0 {
            return Err(format!("zeta must be >= 0, got {}", self.zeta));
        }
        if self.min_pause_ticks == 0 || self.max_pause_ticks <= self.min_pause_ticks {
            return Err("pause bounds must satisfy 0 < min < max".into());
        }
        Ok(())
    }
}

/// State of one simulated entity.
#[derive(Debug, Clone)]
struct EntityState {
    /// Current base-unit ordinal.
    position: u32,
    /// Visited ordinals with their visit counts, most-visited first is *not*
    /// maintained eagerly; we sort ranks lazily when a return jump happens.
    visits: Vec<(u32, u32)>,
    total_visits: u64,
}

impl EntityState {
    fn new(start: u32) -> Self {
        EntityState { position: start, visits: vec![(start, 1)], total_visits: 1 }
    }

    fn distinct_visited(&self) -> usize {
        self.visits.len()
    }

    fn record_visit(&mut self, ordinal: u32) {
        self.total_visits += 1;
        if let Some(entry) = self.visits.iter_mut().find(|(o, _)| *o == ordinal) {
            entry.1 += 1;
        } else {
            self.visits.push((ordinal, 1));
        }
        self.position = ordinal;
    }
}

/// Simulates digital traces under the hierarchical IM model.
#[derive(Debug)]
pub struct ImSimulator<'h> {
    hierarchy: &'h HierarchySpec,
    config: ImConfig,
    pause: BoundedPowerLaw,
    displacement: BoundedPowerLaw,
}

impl<'h> ImSimulator<'h> {
    /// Creates a simulator over a generated hierarchy.
    ///
    /// # Panics
    /// Panics when the configuration is invalid (see [`ImConfig::validate`]).
    pub fn new(hierarchy: &'h HierarchySpec, config: ImConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid IM configuration: {msg}");
        }
        let pause = BoundedPowerLaw::new(
            config.beta,
            config.min_pause_ticks as f64,
            config.max_pause_ticks as f64,
        );
        let max_jump = (hierarchy.config().grid_side as f64).max(2.0);
        let displacement = BoundedPowerLaw::new(config.alpha, 1.0, max_jump);
        ImSimulator { hierarchy, config, pause, displacement }
    }

    /// The configuration in use.
    pub fn config(&self) -> ImConfig {
        self.config
    }

    /// Simulates one entity for `total_ticks` ticks starting from `start_ordinal`,
    /// producing its digital trace.
    pub fn simulate_entity<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        entity: EntityId,
        start_ordinal: u32,
        total_ticks: u64,
    ) -> DigitalTrace {
        let sp = self.hierarchy.sp_index();
        let mut state = EntityState::new(start_ordinal);
        let mut trace = DigitalTrace::new();
        // Random phase so entities do not all start a pause at tick 0.
        let mut now = rng.gen_range(0..self.config.min_pause_ticks.max(2));
        while now < total_ticks {
            let pause = (self.pause.sample(rng) as u64).max(1);
            let end = (now + pause).min(total_ticks);
            let unit = sp.base_units()[state.position as usize];
            trace.push(PresenceInstance::new(
                entity,
                unit,
                Period::new(now, end).expect("end >= start"),
            ));
            let travel = if self.config.mean_travel_ticks == 0 {
                0
            } else {
                rng.gen_range(0..=2 * self.config.mean_travel_ticks)
            };
            now = end + travel;
            let next = self.next_position(rng, &state);
            state.record_visit(next);
        }
        trace
    }

    /// Chooses the next base-unit ordinal according to the explore/return rules.
    fn next_position<R: Rng + ?Sized>(&self, rng: &mut R, state: &EntityState) -> u32 {
        let s = state.distinct_visited() as f64;
        let p_new = (self.config.rho * s.powf(-self.config.gamma)).clamp(0.0, 1.0);
        if rng.gen_bool(p_new) {
            self.explore(rng, state.position)
        } else {
            self.return_jump(rng, state)
        }
    }

    /// Equation 6.3: a jump in a uniformly random direction with power-law length.
    fn explore<R: Rng + ?Sized>(&self, rng: &mut R, from: u32) -> u32 {
        let (x, y) = self.hierarchy.grid_coordinates(from);
        let distance = self.displacement.sample(rng);
        let angle = rng.gen_range(0.0..std::f64::consts::TAU);
        let dx = (distance * angle.cos()).round() as i64;
        let dy = (distance * angle.sin()).round() as i64;
        self.hierarchy.ordinal_of(x as i64 + dx, y as i64 + dy)
    }

    /// Equations 6.2/6.4: return to a previously visited unit.
    fn return_jump<R: Rng + ?Sized>(&self, rng: &mut R, state: &EntityState) -> u32 {
        match self.config.return_model {
            ReturnModel::Preferential => {
                let total = state.total_visits;
                let mut threshold = rng.gen_range(0..total);
                for &(ordinal, count) in &state.visits {
                    if (count as u64) > threshold {
                        return ordinal;
                    }
                    threshold -= count as u64;
                }
                state.position
            }
            ReturnModel::ZipfRank => {
                // Rank units by visit count (descending) and draw the rank from a
                // Zipf(ζ) distribution.
                let mut ranked: Vec<(u32, u32)> = state.visits.clone();
                ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                let zipf = ZipfSampler::new(ranked.len(), self.config.zeta);
                let rank = zipf.sample(rng);
                ranked[rank - 1].0
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hierarchy::HierarchyConfig;
    use rand::{rngs::StdRng, SeedableRng};
    use trace_model::TraceSet;

    fn spec() -> HierarchySpec {
        HierarchySpec::generate(HierarchyConfig {
            grid_side: 30,
            levels: 3,
            ..HierarchyConfig::default()
        })
        .unwrap()
    }

    const WEEK_MINUTES: u64 = 7 * 24 * 60;

    #[test]
    fn default_config_is_valid() {
        assert!(ImConfig::default().validate().is_ok());
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let base = ImConfig::default();
        assert!(ImConfig { beta: 0.0, ..base }.validate().is_err());
        assert!(ImConfig { beta: 1.5, ..base }.validate().is_err());
        assert!(ImConfig { rho: 0.0, ..base }.validate().is_err());
        assert!(ImConfig { gamma: -1.0, ..base }.validate().is_err());
        assert!(ImConfig { alpha: 2.5, ..base }.validate().is_err());
        assert!(ImConfig { zeta: -0.1, ..base }.validate().is_err());
        assert!(ImConfig { min_pause_ticks: 0, ..base }.validate().is_err());
        assert!(ImConfig { max_pause_ticks: 10, min_pause_ticks: 20, ..base }.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "invalid IM configuration")]
    fn simulator_panics_on_invalid_config() {
        let spec = spec();
        let _ = ImSimulator::new(&spec, ImConfig { beta: 0.0, ..ImConfig::default() });
    }

    #[test]
    fn simulated_trace_covers_the_requested_window() {
        let spec = spec();
        let sim = ImSimulator::new(&spec, ImConfig::default());
        let mut rng = StdRng::seed_from_u64(1);
        let trace = sim.simulate_entity(&mut rng, EntityId(1), 10, WEEK_MINUTES);
        assert!(!trace.is_empty());
        for pi in trace.instances() {
            assert!(pi.period.end <= WEEK_MINUTES);
            assert!(pi.period.length() >= 1);
        }
        // Instances are chronological and non-overlapping.
        for w in trace.instances().windows(2) {
            assert!(w[0].period.end <= w[1].period.start);
        }
    }

    #[test]
    fn pause_durations_are_heavy_tailed() {
        let spec = spec();
        let sim = ImSimulator::new(&spec, ImConfig::default());
        let mut rng = StdRng::seed_from_u64(2);
        let trace = sim.simulate_entity(&mut rng, EntityId(1), 0, 60 * 24 * 60);
        let durations: Vec<u64> = trace.instances().iter().map(|pi| pi.period.length()).collect();
        let short = durations.iter().filter(|&&d| d < 120).count() as f64;
        let frac_short = short / durations.len() as f64;
        assert!(frac_short > 0.5, "most stays should be short: {frac_short}");
    }

    #[test]
    fn exploration_slows_down_over_time() {
        // Equation 6.5: S(t) grows sub-linearly; check that the second half of the
        // simulation discovers fewer new units than the first half.
        let spec = spec();
        let sim = ImSimulator::new(&spec, ImConfig::default());
        let mut rng = StdRng::seed_from_u64(3);
        let total = 60 * 24 * 60u64;
        let trace = sim.simulate_entity(&mut rng, EntityId(1), 5, total);
        let mut seen = std::collections::BTreeSet::new();
        let mut first_half_new = 0;
        let mut second_half_new = 0;
        for pi in trace.instances() {
            if seen.insert(pi.unit) {
                if pi.period.start < total / 2 {
                    first_half_new += 1;
                } else {
                    second_half_new += 1;
                }
            }
        }
        assert!(first_half_new > 0);
        assert!(
            second_half_new <= first_half_new,
            "exploration should decelerate: {first_half_new} then {second_half_new}"
        );
    }

    #[test]
    fn visit_frequency_is_skewed_toward_top_locations() {
        let spec = spec();
        let sim = ImSimulator::new(&spec, ImConfig::default());
        let mut rng = StdRng::seed_from_u64(4);
        let trace = sim.simulate_entity(&mut rng, EntityId(1), 7, 90 * 24 * 60);
        let mut counts: std::collections::BTreeMap<u32, usize> = Default::default();
        for pi in trace.instances() {
            *counts.entry(pi.unit).or_default() += 1;
        }
        let mut freq: Vec<usize> = counts.values().copied().collect();
        freq.sort_unstable_by(|a, b| b.cmp(a));
        assert!(freq.len() >= 3, "entity should visit several units");
        let top2: usize = freq.iter().take(2).sum();
        let total: usize = freq.iter().sum();
        assert!(
            top2 as f64 / total as f64 > 0.3,
            "the top locations should dominate the visits ({top2}/{total})"
        );
    }

    #[test]
    fn preferential_and_zipf_return_models_both_work() {
        let spec = spec();
        for model in [ReturnModel::Preferential, ReturnModel::ZipfRank] {
            let sim =
                ImSimulator::new(&spec, ImConfig { return_model: model, ..ImConfig::default() });
            let mut rng = StdRng::seed_from_u64(5);
            let trace = sim.simulate_entity(&mut rng, EntityId(9), 0, WEEK_MINUTES);
            assert!(!trace.is_empty());
        }
    }

    #[test]
    fn larger_alpha_increases_locality() {
        // α controls jump displacement decay: larger α → shorter jumps → fewer
        // distinct locations far apart. Compare the mean squared displacement from
        // the start position.
        let spec = spec();
        let msd = |alpha: f64, seed: u64| -> f64 {
            let sim = ImSimulator::new(&spec, ImConfig { alpha, ..ImConfig::default() });
            let mut rng = StdRng::seed_from_u64(seed);
            let mut total = 0.0;
            let mut count = 0.0;
            for e in 0..20u64 {
                let start = 465u32; // centre of the 30x30 grid
                let trace = sim.simulate_entity(&mut rng, EntityId(e), start, WEEK_MINUTES);
                let (sx, sy) = spec.grid_coordinates(start);
                for pi in trace.instances() {
                    let ordinal = spec.sp_index().base_ordinal(pi.unit).unwrap();
                    let (x, y) = spec.grid_coordinates(ordinal);
                    let dx = x as f64 - sx as f64;
                    let dy = y as f64 - sy as f64;
                    total += dx * dx + dy * dy;
                    count += 1.0;
                }
            }
            total / count
        };
        let spread_out = msd(0.3, 7);
        let local = msd(1.8, 7);
        assert!(
            local < spread_out,
            "larger alpha must reduce displacement (got {local} >= {spread_out})"
        );
    }

    #[test]
    fn traces_are_usable_as_a_trace_set() {
        let spec = spec();
        let sim = ImSimulator::new(&spec, ImConfig::default());
        let mut rng = StdRng::seed_from_u64(6);
        let mut ts = TraceSet::new(60);
        for e in 0..5u64 {
            let start = rng.gen_range(0..spec.sp_index().num_base_units() as u32);
            let trace = sim.simulate_entity(&mut rng, EntityId(e), start, WEEK_MINUTES);
            ts.insert_trace(EntityId(e), trace);
        }
        assert_eq!(ts.num_entities(), 5);
        let seqs = ts.cell_sequences(spec.sp_index()).unwrap();
        for seq in seqs.values() {
            assert_eq!(seq.num_levels(), 3);
            assert!(!seq.base().is_empty());
        }
    }
}
