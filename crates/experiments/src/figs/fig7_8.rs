//! Figure 7.8 — indexing cost: build time and index size vs. the number of hash
//! functions.
//!
//! Build time grows almost linearly with `nh` (signature computation dominates,
//! Section 4.3's `O(|E|·C·m·nh)`), and the index size grows with `nh` because
//! wider signatures make entities more distinguishable, splitting leaves — but
//! the tree stays tiny compared to the raw data.

use crate::common::build_index;
use crate::report::Table;
use crate::scale::Scale;
use mobility::SynDataset;
use trace_storage::PagedTraceStore;

/// Runs the experiment.
pub fn run(scale: &Scale) -> Table {
    let mut table = Table::new(
        "Figure 7.8 — indexing cost",
        "MinSigTree construction time and index size as the number of hash functions grows, \
         with the raw (paged) data size for comparison.",
        vec![
            "dataset",
            "hash functions",
            "build time (ms)",
            "index size (KiB)",
            "tree nodes",
            "raw data (KiB)",
            "hash evaluations",
        ],
    );
    for (name, config) in [("SYN", scale.syn_config()), ("REAL-like", scale.real_config())] {
        let dataset = SynDataset::generate(config).expect("dataset generation");
        let store = PagedTraceStore::build(&dataset.traces, 8);
        let raw_kib = store.data_bytes() as f64 / 1024.0;
        for &nh in scale.hash_function_sweep {
            let index = build_index(&dataset, nh);
            let stats = index.stats();
            table.push_row(vec![
                name.to_string(),
                nh.to_string(),
                format!("{:.1}", stats.build_time_us as f64 / 1000.0),
                format!("{:.1}", stats.index_bytes as f64 / 1024.0),
                stats.num_nodes.to_string(),
                format!("{raw_kib:.1}"),
                stats.hash_evaluations.to_string(),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_evaluations_grow_linearly_with_nh() {
        let table = run(&Scale::smoke());
        for dataset in ["SYN", "REAL-like"] {
            let rows: Vec<_> = table.rows().iter().filter(|r| r[0] == dataset).collect();
            let nh_first: f64 = rows.first().unwrap()[1].parse().unwrap();
            let nh_last: f64 = rows.last().unwrap()[1].parse().unwrap();
            let ev_first: f64 = rows.first().unwrap()[6].parse().unwrap();
            let ev_last: f64 = rows.last().unwrap()[6].parse().unwrap();
            let ratio_nh = nh_last / nh_first;
            let ratio_ev = ev_last / ev_first;
            assert!(
                (ratio_ev - ratio_nh).abs() < 0.01,
                "{dataset}: hash evaluations must scale with nh ({ratio_ev} vs {ratio_nh})"
            );
        }
    }

    #[test]
    fn index_is_small_relative_to_raw_data() {
        let table = run(&Scale::smoke());
        for row in table.rows() {
            let index_kib: f64 = row[3].parse().unwrap();
            let raw_kib: f64 = row[5].parse().unwrap();
            assert!(index_kib < raw_kib, "the tree should be smaller than the raw traces");
        }
    }
}
