//! Figure 7.5 — pruning effectiveness vs. ADM parameters (u, v).
//!
//! The paper finds that a smaller level exponent `u` and a larger duration
//! exponent `v` yield the best pruning, because the signatures encode
//! co-presence duration (shared ST-cells) but not AjPI level.

use crate::common::{average_pe, build_index};
use crate::report::Table;
use crate::scale::Scale;
use mobility::SynDataset;
use trace_model::PaperAdm;

/// Runs the experiment.
pub fn run(scale: &Scale) -> Table {
    let mut table = Table::new(
        "Figure 7.5 — PE vs. ADM parameters",
        "Pruning effectiveness of Top-10 queries under the Equation 7.1 measure for u, v in 2..=5.",
        vec!["dataset", "u", "v", "PE", "fraction checked"],
    );
    let sweep: Vec<f64> =
        if scale.syn_entities > 500 { vec![2.0, 3.0, 4.0, 5.0] } else { vec![2.0, 5.0] };
    for (name, config) in [("SYN", scale.syn_config()), ("REAL-like", scale.real_config())] {
        let dataset = SynDataset::generate(config).expect("dataset generation");
        let index = build_index(&dataset, scale.default_hash_functions);
        let queries = dataset.query_entities(scale.queries, scale.seed + 5);
        let m = dataset.sp_index().height() as usize;
        for &u in &sweep {
            for &v in &sweep {
                let measure = PaperAdm::new(m, u, v).expect("valid parameters");
                let pe = average_pe(&index, &queries, 10, &measure);
                table.push_row(vec![
                    name.to_string(),
                    format!("{u}"),
                    format!("{v}"),
                    format!("{:.4}", pe.pruning_effectiveness),
                    format!("{:.4}", pe.fraction_checked),
                ]);
            }
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_uv_combination_is_reported() {
        let table = run(&Scale::smoke());
        // 2 datasets x 2 values of u x 2 values of v at smoke scale.
        assert_eq!(table.rows().len(), 8);
        for row in table.rows() {
            let pe: f64 = row[3].parse().unwrap();
            assert!((0.0..=1.0).contains(&pe));
        }
    }
}
