//! Figure 7.4 — pruning effectiveness vs. data characteristics.
//!
//! Eight sub-figures, one per generator parameter (α, β, ρ, γ, ζ for mobility and
//! a, b, m for the spatial hierarchy); each varies one parameter while holding
//! the others at the paper's defaults and reports PE for Top-1, Top-10 and Top-50
//! queries.

use crate::common::{average_pe, build_index};
use crate::report::Table;
use crate::scale::Scale;
use mobility::{SynConfig, SynDataset};
use trace_model::PaperAdm;

/// The parameter grid of one sub-figure.
struct Sweep {
    parameter: &'static str,
    values: Vec<f64>,
    apply: fn(&mut SynConfig, f64),
}

fn sweeps(scale: &Scale) -> Vec<Sweep> {
    // At smoke scale, use two points per parameter to keep tests fast; otherwise a
    // denser grid resembling the paper's x-axes.
    let dense = scale.syn_entities > 500;
    let pick = move |lo: f64, hi: f64, steps: usize| -> Vec<f64> {
        let steps = if dense { steps } else { 2 };
        (0..steps)
            .map(|i| lo + (hi - lo) * i as f64 / (steps.saturating_sub(1)).max(1) as f64)
            .collect()
    };
    vec![
        Sweep { parameter: "alpha", values: pick(0.2, 2.0, 5), apply: |c, v| c.mobility.alpha = v },
        Sweep { parameter: "beta", values: pick(0.2, 1.0, 5), apply: |c, v| c.mobility.beta = v },
        Sweep { parameter: "rho", values: pick(0.2, 1.0, 5), apply: |c, v| c.mobility.rho = v },
        Sweep { parameter: "gamma", values: pick(0.1, 1.0, 5), apply: |c, v| c.mobility.gamma = v },
        Sweep { parameter: "zeta", values: pick(0.2, 2.0, 5), apply: |c, v| c.mobility.zeta = v },
        Sweep {
            parameter: "a (width exponent)",
            values: pick(1.0, 2.0, 3),
            apply: |c, v| c.hierarchy.width_exponent = v,
        },
        Sweep {
            parameter: "b (density exponent)",
            values: pick(1.0, 2.0, 3),
            apply: |c, v| c.hierarchy.density_exponent = v,
        },
        Sweep {
            parameter: "m (levels)",
            values: if dense { vec![3.0, 4.0, 5.0] } else { vec![2.0, 3.0] },
            apply: |c, v| c.hierarchy.levels = v as u8,
        },
    ]
}

/// Runs the experiment.
pub fn run(scale: &Scale) -> Table {
    let mut table = Table::new(
        "Figure 7.4 — PE vs. data characteristics",
        "Pruning effectiveness as one generator parameter varies while the others stay at the \
         paper's defaults (α=0.6, β=0.8, γ=0.2, ζ=1.2, ρ=0.6, a=b=2, m=4).",
        vec!["parameter", "value", "PE top-1", "PE top-10", "PE top-50"],
    );
    for sweep in sweeps(scale) {
        for &value in &sweep.values {
            let mut config = scale.syn_config();
            (sweep.apply)(&mut config, value);
            let dataset = SynDataset::generate(config).expect("dataset generation");
            let index = build_index(&dataset, scale.default_hash_functions);
            let queries = dataset.query_entities(scale.queries, scale.seed + 4);
            let measure = PaperAdm::default_for(dataset.sp_index().height() as usize);
            let mut row = vec![sweep.parameter.to_string(), format!("{value:.2}")];
            for k in [1usize, 10, 50] {
                let pe = average_pe(&index, &queries, k, &measure);
                row.push(format!("{:.4}", pe.pruning_effectiveness));
            }
            table.push_row(row);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn covers_all_eight_parameters() {
        let table = run(&Scale::smoke());
        let params: std::collections::BTreeSet<String> =
            table.rows().iter().map(|r| r[0].clone()).collect();
        assert_eq!(params.len(), 8);
        for row in table.rows() {
            for cell in row.iter().take(5).skip(2) {
                let pe: f64 = cell.parse().unwrap();
                assert!((0.0..=1.0).contains(&pe));
            }
        }
    }
}
