//! Figure 7.9 — incremental update cost.
//!
//! A batch of entities receives new records; the figure reports the time to fold
//! the batch into an already-built MinSigTree as a function of the number of hash
//! functions, for batches in which 100 %, 70 % and 40 % of the updated entities
//! already exist in the index (the paper finds inserting brand-new entities is
//! cheaper than relocating existing ones).

use crate::common::build_index;
use crate::report::Table;
use crate::scale::Scale;
use mobility::SynDataset;
use std::time::Instant;
use trace_model::{DigitalTrace, EntityId, Period, PresenceInstance};

/// Builds the update batch: `existing_fraction` of the batch are entities already
/// in the dataset (they get additional records), the rest are new entities.
fn update_batch(
    dataset: &SynDataset,
    batch_size: usize,
    existing_fraction: f64,
    seed: u64,
) -> Vec<(EntityId, DigitalTrace)> {
    let existing: Vec<EntityId> = dataset.traces.entities().collect();
    let base_units = dataset.sp_index().base_units().to_vec();
    let num_existing = (batch_size as f64 * existing_fraction) as usize;
    let mut batch = Vec::with_capacity(batch_size);
    for i in 0..batch_size {
        let entity = if i < num_existing {
            existing[(seed as usize + i * 7) % existing.len()]
        } else {
            EntityId(1_000_000 + seed * 10_000 + i as u64)
        };
        // A fresh burst of presence instances.
        let mut trace = dataset.traces.get(entity).cloned().unwrap_or_default();
        for step in 0..5u64 {
            let unit = base_units[(i * 31 + step as usize) % base_units.len()];
            let start = 10_000 + step * 120;
            trace.push(PresenceInstance::new(
                entity,
                unit,
                Period::new(start, start + 60).unwrap(),
            ));
        }
        batch.push((entity, trace));
    }
    batch
}

/// Runs the experiment.
pub fn run(scale: &Scale) -> Table {
    let mut table = Table::new(
        "Figure 7.9 — update cost",
        "Time to apply a batch of entity updates to an existing MinSigTree, by number of hash \
         functions and by the fraction of updated entities that already exist in the index.",
        vec![
            "hash functions",
            "existing fraction",
            "batch size",
            "update time (ms)",
            "per entity (us)",
        ],
    );
    let dataset = SynDataset::generate(scale.syn_config()).expect("dataset generation");
    let batch_size = (scale.syn_entities / 10).clamp(10, 5_000);
    for &nh in scale.hash_function_sweep {
        for existing_fraction in [1.0, 0.7, 0.4] {
            let mut index = build_index(&dataset, nh);
            let batch = update_batch(&dataset, batch_size, existing_fraction, scale.seed);
            let start = Instant::now();
            for (entity, trace) in &batch {
                // Upsert: the batch deliberately mixes existing and never-seen
                // entities (the "existing fraction" axis of the figure).
                index.upsert_entity(*entity, trace).expect("upsert");
            }
            let elapsed = start.elapsed();
            table.push_row(vec![
                nh.to_string(),
                format!("{:.0}%", existing_fraction * 100.0),
                batch.len().to_string(),
                format!("{:.2}", elapsed.as_secs_f64() * 1000.0),
                format!("{:.1}", elapsed.as_micros() as f64 / batch.len() as f64),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_model::PaperAdm;

    #[test]
    fn updates_preserve_query_correctness() {
        let scale = Scale::smoke();
        let dataset = SynDataset::generate(scale.syn_config()).unwrap();
        let mut index = build_index(&dataset, 16);
        let batch = update_batch(&dataset, 20, 0.5, 3);
        for (entity, trace) in &batch {
            index.upsert_entity(*entity, trace).unwrap();
        }
        // The index must still agree with brute force after the updates.
        let measure = PaperAdm::default_for(index.sp_index().height() as usize);
        let query = batch[0].0;
        let (results, _) = index.top_k(query, 5, &measure).unwrap();
        let expect = index.brute_force(query, 5, &measure).unwrap();
        for (r, e) in results.iter().zip(expect.iter()) {
            assert!((r.degree - e.degree).abs() < 1e-9);
        }
    }

    #[test]
    fn batches_contain_the_requested_mix() {
        let scale = Scale::smoke();
        let dataset = SynDataset::generate(scale.syn_config()).unwrap();
        let batch = update_batch(&dataset, 40, 0.4, 1);
        let existing = batch.iter().filter(|(e, _)| dataset.traces.contains(*e)).count();
        assert!((16 - 2..=16 + 2).contains(&existing), "roughly 40% existing, got {existing}");
    }
}
