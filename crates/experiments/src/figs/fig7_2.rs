//! Figure 7.2 — association degree distribution.
//!
//! For ADM parameter combinations `(u, v) ∈ {2, 5}²`, the figure shows how many
//! entities fall into each association-degree bucket with respect to a query
//! entity.  The paper's observation — most entities bear low association degrees
//! with any particular entity, and the `u = 2, v = 5` combination assigns high
//! degrees to the fewest entities — is what the harness reproduces.

use crate::report::Table;
use crate::scale::Scale;
use mobility::SynDataset;
use trace_model::{AssociationMeasure, PaperAdm};

/// Degree buckets matching the paper's 0.1-wide bars.
const BUCKETS: usize = 8;

/// Runs the experiment.
pub fn run(scale: &Scale) -> Table {
    let mut table = Table::new(
        "Figure 7.2 — association degree distribution",
        "Average number of entities per association-degree bucket for a query entity, \
         under ADM parameter combinations (u, v).",
        {
            let mut cols = vec!["dataset".to_string(), "u,v".to_string()];
            cols.extend(
                (0..BUCKETS)
                    .map(|b| format!("({:.1},{:.1}]", b as f64 * 0.1, (b + 1) as f64 * 0.1)),
            );
            cols.push("zero".to_string());
            cols
        },
    );

    for (name, config) in [("SYN", scale.syn_config()), ("REAL-like", scale.real_config())] {
        let dataset = SynDataset::generate(config).expect("dataset generation");
        let sp = dataset.sp_index();
        let seqs = dataset.traces.cell_sequences(sp).expect("sequences");
        let queries = dataset.query_entities(scale.queries, scale.seed + 2);
        for (u, v) in [(2.0, 2.0), (2.0, 5.0), (5.0, 2.0), (5.0, 5.0)] {
            let measure = PaperAdm::new(sp.height() as usize, u, v).expect("valid parameters");
            let mut buckets = [0u64; BUCKETS];
            let mut zero = 0u64;
            for &query in &queries {
                let query_seq = &seqs[&query];
                for (entity, seq) in &seqs {
                    if *entity == query {
                        continue;
                    }
                    let degree = measure.degree(query_seq, seq);
                    if degree <= f64::EPSILON {
                        zero += 1;
                    } else {
                        let bucket = ((degree * 10.0).ceil() as usize).clamp(1, BUCKETS) - 1;
                        buckets[bucket] += 1;
                    }
                }
            }
            let denom = queries.len().max(1) as f64;
            let mut row = vec![name.to_string(), format!("{u},{v}")];
            row.extend(buckets.iter().map(|&c| format!("{:.1}", c as f64 / denom)));
            row.push(format!("{:.1}", zero as f64 / denom));
            table.push_row(row);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn most_entities_have_low_or_zero_degree() {
        let table = run(&Scale::smoke());
        for row in table.rows() {
            let low: f64 =
                row[2].parse::<f64>().unwrap() + row.last().unwrap().parse::<f64>().unwrap();
            let high: f64 = row[3..row.len() - 1].iter().map(|c| c.parse::<f64>().unwrap()).sum();
            assert!(
                low >= high,
                "the low/zero buckets should dominate the distribution ({low} vs {high})"
            );
        }
    }
}
