//! Figure 7.3 — pruning effectiveness vs. the number of hash functions,
//! measured against the analytical prediction of Section 6.3.

use crate::common::{average_pe, build_index, estimate_nc, mean_cells_per_entity};
use crate::report::Table;
use crate::scale::Scale;
use mobility::{AnalyticalPeModel, SynDataset};
use trace_model::PaperAdm;

/// Runs the experiment.
pub fn run(scale: &Scale) -> Table {
    let mut table = Table::new(
        "Figure 7.3 — PE vs. number of hash functions",
        "Measured pruning effectiveness (fraction of entities pruned, Top-10 queries) and the \
         Section 6.3 analytical prediction, as the signature width nh grows.",
        vec!["dataset", "hash functions", "measured PE", "predicted PE", "fraction checked"],
    );
    for (name, config) in [("SYN", scale.syn_config()), ("REAL-like", scale.real_config())] {
        let dataset = SynDataset::generate(config).expect("dataset generation");
        let queries = dataset.query_entities(scale.queries, scale.seed + 3);
        let measure = PaperAdm::default_for(dataset.sp_index().height() as usize);
        for &nh in scale.hash_function_sweep {
            let index = build_index(&dataset, nh);
            let pe = average_pe(&index, &queries, 10, &measure);
            let cells = mean_cells_per_entity(&index).max(1.0) as u64;
            let nc = estimate_nc(&index, &queries, 10, &measure);
            let hash_range = index.sp_index().num_base_units() as u64
                * (dataset.config.total_ticks() / dataset.config.ticks_per_unit).max(1);
            let predicted =
                AnalyticalPeModel::new(hash_range, cells, nh, nc).predict().fraction_pruned;
            table.push_row(vec![
                name.to_string(),
                nh.to_string(),
                format!("{:.4}", pe.pruning_effectiveness),
                format!("{predicted:.4}"),
                format!("{:.4}", pe.fraction_checked),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pe_does_not_degrade_with_more_hash_functions() {
        let table = run(&Scale::smoke());
        // Within each dataset block the measured PE with the largest nh must be at
        // least as good as with the smallest nh (monotone up to noise).
        for dataset in ["SYN", "REAL-like"] {
            let rows: Vec<_> = table.rows().iter().filter(|r| r[0] == dataset).collect();
            assert!(rows.len() >= 2);
            let first: f64 = rows.first().unwrap()[2].parse().unwrap();
            let last: f64 = rows.last().unwrap()[2].parse().unwrap();
            assert!(
                last + 0.05 >= first,
                "{dataset}: PE should not collapse as nh grows ({first} -> {last})"
            );
        }
    }
}
