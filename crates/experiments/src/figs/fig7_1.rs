//! Figure 7.1 — data distribution.
//!
//! For each dataset (SYN and the REAL-like substitute) and each sp-index level,
//! the figure reports (a) how many entities form at least one AjPI with a sample
//! query entity at that level, and (b) how those AjPIs distribute over duration
//! buckets.  Two entities forming an AjPI at a fine level also form one at every
//! coarser level, so the per-level counts must be non-increasing in the level —
//! that is the shape the paper's Figure 7.1 shows and the property our test
//! asserts.

use crate::report::Table;
use crate::scale::Scale;
use mobility::SynDataset;
use trace_model::{EntityId, LevelOverlap};

/// Duration buckets in base temporal units (the paper uses 100-hour buckets).
const BUCKETS: [(usize, usize); 4] = [(0, 25), (25, 50), (50, 75), (75, usize::MAX)];

fn distribution_rows(table: &mut Table, name: &str, dataset: &SynDataset, queries: &[EntityId]) {
    let sp = dataset.sp_index();
    let seqs = dataset.traces.cell_sequences(sp).expect("sequences");
    let m = sp.height();
    for level in 1..=m {
        let mut with_ajpi = 0u64;
        let mut bucket_counts = [0u64; BUCKETS.len()];
        for &query in queries {
            let query_seq = &seqs[&query];
            for (entity, seq) in &seqs {
                if *entity == query {
                    continue;
                }
                let overlap = LevelOverlap::from_sequences(query_seq, seq).level(level).overlap;
                if overlap > 0 {
                    with_ajpi += 1;
                    for (i, &(lo, hi)) in BUCKETS.iter().enumerate() {
                        if overlap >= lo && overlap < hi {
                            bucket_counts[i] += 1;
                        }
                    }
                }
            }
        }
        let denom = queries.len().max(1) as f64;
        let mut row: Vec<String> = vec![
            name.to_string(),
            format!("level {level}"),
            format!("{:.1}", with_ajpi as f64 / denom),
        ];
        row.extend(bucket_counts.iter().map(|&c| format!("{:.1}", c as f64 / denom)));
        table.push_row(row);
    }
}

/// Runs the experiment.
pub fn run(scale: &Scale) -> Table {
    let mut table = Table::new(
        "Figure 7.1 — data distribution",
        "Average number of entities forming AjPIs with a query entity, per sp-index level, \
         and their distribution over co-presence duration buckets (base temporal units).",
        vec!["dataset", "level", "entities with AjPI", "duration 0-25", "25-50", "50-75", "75+"],
    );
    for (name, config) in [("SYN", scale.syn_config()), ("REAL-like", scale.real_config())] {
        let dataset = SynDataset::generate(config).expect("dataset generation");
        let queries = dataset.query_entities(scale.queries, scale.seed + 1);
        distribution_rows(&mut table, name, &dataset, &queries);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ajpi_counts_decrease_with_level() {
        let table = run(&Scale::smoke());
        // Rows come in per-dataset blocks of m levels; within each block the
        // "entities with AjPI" column must be non-increasing (coarser levels see
        // at least as many co-occurrences).
        let mut previous: Option<(String, f64)> = None;
        for row in table.rows() {
            let dataset = row[0].clone();
            let count: f64 = row[2].parse().unwrap();
            if let Some((prev_dataset, prev_count)) = &previous {
                if *prev_dataset == dataset {
                    assert!(
                        count <= *prev_count + 1e-9,
                        "AjPI count must not grow with level: {count} > {prev_count}"
                    );
                }
            }
            previous = Some((dataset, count));
        }
    }
}
