//! One runner per figure of the paper's evaluation (Chapter 7).
//!
//! | Module | Paper artifact |
//! |---|---|
//! | [`fig7_1`] | Figure 7.1 — data distribution (AjPI counts and durations per level) |
//! | [`fig7_2`] | Figure 7.2 — association degree distribution under ADM parameters |
//! | [`fig7_3`] | Figure 7.3 — PE vs. number of hash functions (measured vs. predicted) |
//! | [`fig7_4`] | Figure 7.4 — PE vs. data characteristics (α, β, ρ, γ, ζ, a, b, m) |
//! | [`fig7_5`] | Figure 7.5 — PE vs. ADM parameters (u, v) |
//! | [`fig7_6`] | Figure 7.6 — search time vs. memory size |
//! | [`fig7_7`] | Figure 7.7 — PE vs. result size k, MinSigTree vs. baseline |
//! | [`fig7_8`] | Figure 7.8 — indexing cost (build time, index size) |
//! | [`fig7_9`] | Figure 7.9 — update cost vs. fraction of existing entities |

pub mod fig7_1;
pub mod fig7_2;
pub mod fig7_3;
pub mod fig7_4;
pub mod fig7_5;
pub mod fig7_6;
pub mod fig7_7;
pub mod fig7_8;
pub mod fig7_9;
