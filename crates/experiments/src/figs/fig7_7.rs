//! Figure 7.7 — pruning effectiveness vs. result size `k`, MinSigTree against the
//! frequent-pattern/bitmap baseline.
//!
//! The paper's headline comparison: the MinSigTree's PE decreases only slightly
//! as `k` grows, while the baseline's locality assumption fails on digital traces
//! and its PE is far lower at every `k`.

use crate::common::{average_pe, build_index};
use crate::report::Table;
use crate::scale::Scale;
use baseline::{BitmapIndex, BitmapIndexConfig};
use mobility::SynDataset;
use trace_model::PaperAdm;

/// Runs the experiment.
pub fn run(scale: &Scale) -> Table {
    let mut table = Table::new(
        "Figure 7.7 — PE vs. result size (k)",
        "Pruning effectiveness of the MinSigTree (two signature widths) and the \
         frequent-pattern bitmap baseline as k grows.",
        vec!["dataset", "k", "MinSigTree (small nh)", "MinSigTree (large nh)", "baseline"],
    );
    let small_nh = *scale.hash_function_sweep.first().expect("non-empty sweep");
    let large_nh = *scale.hash_function_sweep.last().expect("non-empty sweep");

    for (name, config) in [("SYN", scale.syn_config()), ("REAL-like", scale.real_config())] {
        let dataset = SynDataset::generate(config).expect("dataset generation");
        let queries = dataset.query_entities(scale.queries, scale.seed + 7);
        let measure = PaperAdm::default_for(dataset.sp_index().height() as usize);

        let index_small = build_index(&dataset, small_nh);
        let index_large = build_index(&dataset, large_nh);
        let sequences = index_large.sequences().clone();
        let bitmap =
            BitmapIndex::build(&sequences, BitmapIndexConfig { min_support: 3, num_clusters: 256 });

        for &k in scale.k_sweep {
            let pe_small = average_pe(&index_small, &queries, k, &measure);
            let pe_large = average_pe(&index_large, &queries, k, &measure);
            let mut baseline_pe = 0.0;
            for &q in &queries {
                let (_, stats) = bitmap.top_k(&sequences, q, k, &measure);
                baseline_pe += stats.pruning_effectiveness();
            }
            baseline_pe /= queries.len().max(1) as f64;
            table.push_row(vec![
                name.to_string(),
                k.to_string(),
                format!("{:.4}", pe_small.pruning_effectiveness),
                format!("{:.4}", pe_large.pruning_effectiveness),
                format!("{baseline_pe:.4}"),
            ]);
        }
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minsigtree_prunes_at_least_as_well_as_the_baseline() {
        let table = run(&Scale::smoke());
        let mut tree_wins = 0usize;
        for row in table.rows() {
            let large: f64 = row[3].parse().unwrap();
            let base: f64 = row[4].parse().unwrap();
            if large >= base - 1e-9 {
                tree_wins += 1;
            }
        }
        assert!(
            tree_wins * 2 >= table.rows().len(),
            "the MinSigTree should dominate the baseline on most (dataset, k) points"
        );
    }
}
