//! Figure 7.6 — search time vs. memory size.
//!
//! The MinSigTree and the hash functions stay resident; the raw traces needed for
//! exact leaf evaluation are read through a buffer pool whose budget is a fraction
//! of the raw data size.  The reported search time combines the measured CPU time
//! with the *simulated* I/O latency charged per buffer-pool miss, so the curve's
//! shape (steeply descending, flattening around 40–50 % memory) is reproducible on
//! any machine.

use crate::common::build_index;
use crate::report::Table;
use crate::scale::Scale;
use minsig::QueryOptions;
use mobility::SynDataset;
use trace_model::PaperAdm;
use trace_storage::{PagedTraceStore, PoolConfig};

/// Runs the experiment.
pub fn run(scale: &Scale) -> Table {
    let mut table = Table::new(
        "Figure 7.6 — search time vs. memory size",
        "Average per-query time (CPU + simulated I/O, milliseconds) as the buffer-pool budget \
         varies from 10% to 100% of the raw trace data.",
        vec![
            "memory fraction",
            "top-1 (ms)",
            "top-10 (ms)",
            "top-50 (ms)",
            "pool misses (top-10)",
            "hit rate (top-10)",
        ],
    );
    let dataset = SynDataset::generate(scale.syn_config()).expect("dataset generation");
    let index = build_index(&dataset, scale.default_hash_functions);
    let store = PagedTraceStore::build(&dataset.traces, 8);
    let queries = dataset.query_entities(scale.queries, scale.seed + 6);
    let measure = PaperAdm::default_for(dataset.sp_index().height() as usize);

    let fractions: Vec<f64> = if scale.syn_entities > 500 {
        (1..=10).map(|i| i as f64 / 10.0).collect()
    } else {
        vec![0.1, 0.5, 1.0]
    };
    for fraction in fractions {
        let mut per_k_ms = Vec::new();
        let mut misses_top10 = 0u64;
        let mut hit_rate_top10 = 0.0;
        for &k in &[1usize, 10, 50] {
            let pool = store.pool(PoolConfig::with_memory_fraction(store.data_bytes(), fraction));
            let mut total_us = 0u64;
            for &query in &queries {
                let (_, stats) = index
                    .top_k_paged(query, k, &measure, &store, &pool, QueryOptions::default())
                    .expect("paged query");
                total_us += stats.query_time_us + stats.simulated_io_us;
            }
            per_k_ms.push(total_us as f64 / queries.len().max(1) as f64 / 1000.0);
            if k == 10 {
                misses_top10 = pool.stats().misses;
                hit_rate_top10 = pool.stats().hit_rate();
            }
        }
        table.push_row(vec![
            format!("{fraction:.1}"),
            format!("{:.3}", per_k_ms[0]),
            format!("{:.3}", per_k_ms[1]),
            format!("{:.3}", per_k_ms[2]),
            misses_top10.to_string(),
            format!("{hit_rate_top10:.3}"),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn more_memory_never_increases_pool_misses() {
        let table = run(&Scale::smoke());
        let misses: Vec<u64> = table.rows().iter().map(|r| r[4].parse().unwrap()).collect();
        assert!(
            misses.windows(2).all(|w| w[1] <= w[0]),
            "misses must be non-increasing: {misses:?}"
        );
    }
}
