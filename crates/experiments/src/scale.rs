//! Experiment scales.
//!
//! The paper evaluates on 100 M synthetic entities and a 30 M-device WiFi dataset
//! on a 30-core EC2 instance; this reproduction runs the same experiment code at
//! a configurable laptop scale.  Three presets are provided: `smoke` (seconds —
//! used by unit tests), `small` (tens of seconds — the default for the binary)
//! and `paper_shape` (minutes — larger sweeps matching the paper's parameter
//! grids more closely).

use mobility::{real_like_config, HierarchyConfig, SynConfig};
use serde::Serialize;

/// A named experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct Scale {
    /// Human-readable name of the scale.
    pub name: &'static str,
    /// Number of entities in the SYN dataset.
    pub syn_entities: usize,
    /// Number of entities in the REAL-like dataset.
    pub real_entities: usize,
    /// Days of simulated activity.
    pub days: u32,
    /// Grid side of the SYN world (base units = side²).
    pub grid_side: u32,
    /// Number of query entities averaged per measurement.
    pub queries: usize,
    /// Hash-function counts swept where the experiment varies `nh`.
    pub hash_function_sweep: &'static [u32],
    /// Default number of hash functions for experiments that fix `nh`.
    pub default_hash_functions: u32,
    /// Result sizes swept where the experiment varies `k`.
    pub k_sweep: &'static [usize],
    /// Base RNG seed.
    pub seed: u64,
}

impl Scale {
    /// A seconds-long scale used by unit tests and CI smoke runs.
    pub fn smoke() -> Self {
        Scale {
            name: "smoke",
            syn_entities: 120,
            real_entities: 100,
            days: 2,
            grid_side: 12,
            queries: 3,
            hash_function_sweep: &[8, 32],
            default_hash_functions: 32,
            k_sweep: &[1, 5],
            seed: 7,
        }
    }

    /// The default scale of the `experiments` binary (tens of seconds per figure).
    pub fn small() -> Self {
        Scale {
            name: "small",
            syn_entities: 2_000,
            real_entities: 1_500,
            days: 7,
            grid_side: 40,
            queries: 10,
            hash_function_sweep: &[32, 64, 128, 256, 512],
            default_hash_functions: 256,
            k_sweep: &[1, 10, 20, 30, 40, 50, 60, 70, 80, 90],
            seed: 42,
        }
    }

    /// A larger scale whose parameter grids follow the paper's more closely
    /// (minutes per figure).
    pub fn paper_shape() -> Self {
        Scale {
            name: "paper-shape",
            syn_entities: 20_000,
            real_entities: 10_000,
            days: 14,
            grid_side: 64,
            queries: 20,
            hash_function_sweep: &[200, 400, 600, 800, 1000, 1200, 1400, 1600, 1800, 2000],
            default_hash_functions: 1000,
            k_sweep: &[1, 10, 20, 30, 40, 50, 60, 70, 80, 90],
            seed: 42,
        }
    }

    /// Parses a scale by name.
    pub fn by_name(name: &str) -> Option<Self> {
        match name {
            "smoke" => Some(Self::smoke()),
            "small" => Some(Self::small()),
            "paper-shape" | "paper" => Some(Self::paper_shape()),
            _ => None,
        }
    }

    /// The SYN dataset configuration at this scale.
    pub fn syn_config(&self) -> SynConfig {
        SynConfig {
            num_entities: self.syn_entities,
            days: self.days,
            hierarchy: HierarchyConfig { grid_side: self.grid_side, ..HierarchyConfig::default() },
            seed: self.seed,
            ..SynConfig::default()
        }
    }

    /// The REAL-like dataset configuration at this scale.
    pub fn real_config(&self) -> SynConfig {
        let mut config = real_like_config(self.real_entities, self.seed ^ 0x5A5A);
        config.days = self.days;
        config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_size() {
        assert!(Scale::smoke().syn_entities < Scale::small().syn_entities);
        assert!(Scale::small().syn_entities < Scale::paper_shape().syn_entities);
    }

    #[test]
    fn by_name_round_trips() {
        for name in ["smoke", "small", "paper-shape"] {
            assert_eq!(Scale::by_name(name).unwrap().name, name);
        }
        assert_eq!(Scale::by_name("paper").unwrap().name, "paper-shape");
        assert!(Scale::by_name("huge").is_none());
    }

    #[test]
    fn configs_inherit_scale_parameters() {
        let s = Scale::smoke();
        assert_eq!(s.syn_config().num_entities, 120);
        assert_eq!(s.syn_config().days, 2);
        assert_eq!(s.real_config().num_entities, 100);
        assert_eq!(s.real_config().hierarchy.levels, 4);
    }
}
