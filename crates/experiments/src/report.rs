//! Tabular experiment output.
//!
//! Every experiment produces a [`Table`]: a title, a caption tying it back to the
//! paper's figure, a header and rows of strings.  Tables render either as aligned
//! plain text (for the terminal) or as CSV (for plotting).

use serde::{Deserialize, Serialize};

/// A result table.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Table {
    title: String,
    caption: String,
    columns: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(
        title: impl Into<String>,
        caption: impl Into<String>,
        columns: Vec<impl Into<String>>,
    ) -> Self {
        Table {
            title: title.into(),
            caption: caption.into(),
            columns: columns.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// The table title (e.g. `"Figure 7.3"`).
    pub fn title(&self) -> &str {
        &self.title
    }

    /// The caption describing what is being reproduced.
    pub fn caption(&self) -> &str {
        &self.caption
    }

    /// Column headers.
    pub fn columns(&self) -> &[String] {
        &self.columns
    }

    /// Data rows.
    pub fn rows(&self) -> &[Vec<String>] {
        &self.rows
    }

    /// Appends a row.
    ///
    /// # Panics
    /// Panics when the row arity differs from the header.
    pub fn push_row(&mut self, row: Vec<impl Into<String>>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.columns.len(), "row arity must match the header");
        self.rows.push(row);
    }

    /// Convenience for numeric rows.
    pub fn push_values(&mut self, row: Vec<f64>) {
        self.push_row(row.into_iter().map(format_number).collect::<Vec<String>>());
    }

    /// Renders as aligned plain text.
    pub fn to_text(&self) -> String {
        let mut widths: Vec<usize> = self.columns.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n{}\n", self.title, self.caption));
        let render = |cells: &[String], widths: &[usize]| -> String {
            cells.iter().zip(widths).map(|(c, w)| format!("{c:<w$}")).collect::<Vec<_>>().join("  ")
        };
        out.push_str(&render(&self.columns, &widths));
        out.push('\n');
        out.push_str(
            &"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1)),
        );
        out.push('\n');
        for row in &self.rows {
            out.push_str(&render(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Renders as CSV (header + rows).
    pub fn to_csv(&self) -> String {
        let escape = |s: &String| -> String {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.columns.iter().map(escape).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(escape).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Formats a number compactly: integers without decimals, small fractions with
/// four significant places.
pub fn format_number(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else if x.abs() >= 100.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_render_text() {
        let mut t = Table::new("Figure X", "demo", vec!["a", "b"]);
        t.push_row(vec!["1", "hello"]);
        t.push_values(vec![0.5, 1234.0]);
        let text = t.to_text();
        assert!(text.contains("Figure X"));
        assert!(text.contains("hello"));
        assert!(text.contains("0.5000"));
        assert_eq!(t.rows().len(), 2);
    }

    #[test]
    fn csv_escapes_commas_and_quotes() {
        let mut t = Table::new("t", "c", vec!["x", "y"]);
        t.push_row(vec!["a,b", "say \"hi\""]);
        let csv = t.to_csv();
        assert!(csv.contains("\"a,b\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn mismatched_rows_panic() {
        let mut t = Table::new("t", "c", vec!["x", "y"]);
        t.push_row(vec!["only one"]);
    }

    #[test]
    fn number_formatting() {
        assert_eq!(format_number(3.0), "3");
        assert_eq!(format_number(0.123456), "0.1235");
        assert_eq!(format_number(12345.678), "12345.7");
    }
}
