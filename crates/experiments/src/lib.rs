//! # experiments
//!
//! The experiment harness of the reproduction: one runner per table/figure of the
//! paper's Chapter 7, each producing a [`report::Table`] with the same rows and
//! series the paper plots.  The binary `experiments` exposes them as subcommands
//! (`experiments fig7-3`, `experiments all`, ...); the Criterion benches reuse the
//! same functions at reduced scale.
//!
//! Conventions:
//!
//! * **PE** is reported as the *fraction of entities pruned* (higher is better),
//!   matching the prose of the paper; Definition 5's fraction-checked is also
//!   printed where relevant.
//! * All experiments are deterministic given the scale's seed.
//! * The paper's full scale (100 M entities) is substituted by a configurable
//!   laptop scale (see `DESIGN.md`); the *shape* of every curve is what the
//!   harness reproduces, not absolute wall-clock numbers.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod common;
pub mod figs;
pub mod report;
pub mod scale;

pub use common::{average_pe, estimate_nc, PeMeasurement};
pub use report::Table;
pub use scale::Scale;

/// Runs every experiment at the given scale, returning all tables in figure order.
pub fn run_all(scale: &Scale) -> Vec<Table> {
    vec![
        figs::fig7_1::run(scale),
        figs::fig7_2::run(scale),
        figs::fig7_3::run(scale),
        figs::fig7_4::run(scale),
        figs::fig7_5::run(scale),
        figs::fig7_6::run(scale),
        figs::fig7_7::run(scale),
        figs::fig7_8::run(scale),
        figs::fig7_9::run(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_all_produces_nine_tables_at_smoke_scale() {
        let tables = run_all(&Scale::smoke());
        assert_eq!(tables.len(), 9);
        for table in &tables {
            assert!(!table.rows().is_empty(), "{} has no rows", table.title());
            assert!(!table.columns().is_empty());
            // Every row has the same arity as the header.
            for row in table.rows() {
                assert_eq!(row.len(), table.columns().len(), "{}", table.title());
            }
        }
    }
}
