//! The `experiments` binary: regenerates the paper's tables and figures.
//!
//! ```text
//! experiments <subcommand> [--scale smoke|small|paper-shape] [--csv]
//!
//! Subcommands:
//!   fig7-1 .. fig7-9   one figure
//!   all                every figure in order
//!   list               list available experiments
//! ```

use experiments::{figs, run_all, Scale, Table};
use std::process::ExitCode;

fn print_table(table: &Table, csv: bool) {
    if csv {
        println!("# {}", table.title());
        print!("{}", table.to_csv());
    } else {
        println!("{}", table.to_text());
    }
}

fn usage() {
    eprintln!(
        "usage: experiments <fig7-1|fig7-2|...|fig7-9|all|list> [--scale smoke|small|paper-shape] [--csv]"
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
        return ExitCode::FAILURE;
    }
    let mut command = String::new();
    let mut scale = Scale::small();
    let mut csv = false;
    let mut iter = args.into_iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--scale" => match iter.next().as_deref().and_then(Scale::by_name) {
                Some(s) => scale = s,
                None => {
                    eprintln!("unknown scale (expected smoke, small or paper-shape)");
                    return ExitCode::FAILURE;
                }
            },
            "--csv" => csv = true,
            other if command.is_empty() => command = other.to_string(),
            other => {
                eprintln!("unexpected argument: {other}");
                usage();
                return ExitCode::FAILURE;
            }
        }
    }

    type Runner = fn(&Scale) -> Table;
    let runners: Vec<(&str, Runner)> = vec![
        ("fig7-1", figs::fig7_1::run),
        ("fig7-2", figs::fig7_2::run),
        ("fig7-3", figs::fig7_3::run),
        ("fig7-4", figs::fig7_4::run),
        ("fig7-5", figs::fig7_5::run),
        ("fig7-6", figs::fig7_6::run),
        ("fig7-7", figs::fig7_7::run),
        ("fig7-8", figs::fig7_8::run),
        ("fig7-9", figs::fig7_9::run),
    ];

    match command.as_str() {
        "list" => {
            for (name, _) in &runners {
                println!("{name}");
            }
            println!("all");
            ExitCode::SUCCESS
        }
        "all" => {
            eprintln!("running all experiments at scale '{}'...", scale.name);
            for table in run_all(&scale) {
                print_table(&table, csv);
            }
            ExitCode::SUCCESS
        }
        name => match runners.iter().find(|(n, _)| *n == name) {
            Some((_, runner)) => {
                eprintln!("running {name} at scale '{}'...", scale.name);
                print_table(&runner(&scale), csv);
                ExitCode::SUCCESS
            }
            None => {
                eprintln!("unknown experiment: {name}");
                usage();
                ExitCode::FAILURE
            }
        },
    }
}
