//! Shared measurement helpers used by the per-figure runners.

use minsig::{IndexConfig, MinSigIndex, QueryOptions};
use mobility::SynDataset;
use serde::{Deserialize, Serialize};
use trace_model::{AssociationMeasure, EntityId};

/// The outcome of averaging top-k queries over several query entities.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct PeMeasurement {
    /// Mean pruning effectiveness (fraction of entities pruned; higher is better).
    pub pruning_effectiveness: f64,
    /// Mean fraction of entities checked (Definition 5; lower is better).
    pub fraction_checked: f64,
    /// Mean number of entities checked per query.
    pub entities_checked: f64,
    /// Mean wall-clock query time in microseconds.
    pub query_time_us: f64,
    /// Number of queries averaged.
    pub queries: usize,
}

/// Runs `k`-queries for every entity in `queries` against `index` and averages
/// the pruning statistics.
pub fn average_pe<M: AssociationMeasure + ?Sized>(
    index: &MinSigIndex,
    queries: &[EntityId],
    k: usize,
    measure: &M,
) -> PeMeasurement {
    average_pe_with_options(index, queries, k, measure, QueryOptions::default())
}

/// As [`average_pe`] but with explicit query options (used by the ablations).
pub fn average_pe_with_options<M: AssociationMeasure + ?Sized>(
    index: &MinSigIndex,
    queries: &[EntityId],
    k: usize,
    measure: &M,
    options: QueryOptions,
) -> PeMeasurement {
    let mut out = PeMeasurement::default();
    let mut count = 0usize;
    for &query in queries {
        let Ok((_, stats)) = index.top_k_with_options(query, k, measure, options) else {
            continue;
        };
        out.pruning_effectiveness += stats.pruning_effectiveness();
        out.fraction_checked += stats.fraction_checked();
        out.entities_checked += stats.entities_checked as f64;
        out.query_time_us += stats.query_time_us as f64;
        count += 1;
    }
    if count > 0 {
        let n = count as f64;
        out.pruning_effectiveness /= n;
        out.fraction_checked /= n;
        out.entities_checked /= n;
        out.query_time_us /= n;
    }
    out.queries = count;
    out
}

/// Estimates `nc` (the minimum number of base ST-cells an entity must share with
/// a query to beat the expected k-th association degree) from the dataset: for a
/// sample of query entities, take the base-level overlap of the exact k-th best
/// answer and average it.  This is the quantity the analytical PE model of
/// Section 6.3 needs.
pub fn estimate_nc<M: AssociationMeasure + ?Sized>(
    index: &MinSigIndex,
    queries: &[EntityId],
    k: usize,
    measure: &M,
) -> u64 {
    let mut total = 0u64;
    let mut count = 0u64;
    for &query in queries {
        let Ok(results) = index.brute_force(query, k, measure) else { continue };
        let Some(kth) = results.last() else { continue };
        let (Some(query_seq), Some(kth_seq)) = (index.sequence(query), index.sequence(kth.entity))
        else {
            continue;
        };
        total += query_seq.base().intersection_len(kth_seq.base()) as u64;
        count += 1;
    }
    total.checked_div(count).map_or(1, |mean| mean.max(1))
}

/// Builds the MinSigTree index for a generated dataset with `nh` hash functions.
pub fn build_index(dataset: &SynDataset, nh: u32) -> MinSigIndex {
    MinSigIndex::build(dataset.sp_index(), &dataset.traces, IndexConfig::with_hash_functions(nh))
        .expect("index build over generated data cannot fail")
}

/// Mean number of base ST-cells per entity in an index (the `C` of Section 4.3
/// and the `cells_per_entity` input of the analytical model).
pub fn mean_cells_per_entity(index: &MinSigIndex) -> f64 {
    let n = index.sequences().len();
    if n == 0 {
        return 0.0;
    }
    let total: usize = index.sequences().values().map(|s| s.base().len()).sum();
    total as f64 / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::Scale;
    use trace_model::PaperAdm;

    #[test]
    fn average_pe_over_a_tiny_dataset() {
        let scale = Scale::smoke();
        let dataset = SynDataset::generate(scale.syn_config()).unwrap();
        let index = build_index(&dataset, 16);
        let queries = dataset.query_entities(3, 1);
        let measure = PaperAdm::default_for(index.sp_index().height() as usize);
        let pe = average_pe(&index, &queries, 1, &measure);
        assert_eq!(pe.queries, 3);
        assert!((0.0..=1.0).contains(&pe.pruning_effectiveness));
        assert!((pe.pruning_effectiveness + pe.fraction_checked - 1.0).abs() < 1e-9);
        assert!(pe.entities_checked >= 1.0);
    }

    #[test]
    fn estimate_nc_is_positive_and_bounded_by_trace_size() {
        let scale = Scale::smoke();
        let dataset = SynDataset::generate(scale.syn_config()).unwrap();
        let index = build_index(&dataset, 16);
        let queries = dataset.query_entities(3, 2);
        let measure = PaperAdm::default_for(index.sp_index().height() as usize);
        let nc = estimate_nc(&index, &queries, 1, &measure);
        assert!(nc >= 1);
        let mean_cells = mean_cells_per_entity(&index);
        assert!(mean_cells > 0.0);
        assert!((nc as f64) <= mean_cells * 20.0, "nc should be within an order of the mean trace");
    }

    #[test]
    fn average_pe_with_no_queries_is_empty() {
        let scale = Scale::smoke();
        let dataset = SynDataset::generate(scale.syn_config()).unwrap();
        let index = build_index(&dataset, 8);
        let measure = PaperAdm::default_for(index.sp_index().height() as usize);
        let pe = average_pe(&index, &[], 1, &measure);
        assert_eq!(pe.queries, 0);
        assert_eq!(pe.pruning_effectiveness, 0.0);
    }
}
