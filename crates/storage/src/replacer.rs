//! Pluggable page-eviction policies for the [`BufferPool`](crate::BufferPool).
//!
//! The pool separates *what* is cached (its frame table) from *who* goes next
//! (the [`Replacer`]).  A replacer tracks the access history of resident pages
//! and, on demand, names a victim among the frames the pool has marked
//! evictable — a frame pinned by a running query is never offered up, so an
//! executor holding a pin across [`step`](../../minsig/engine/struct.Executor.html)
//! quanta can rely on the page staying resident however the eviction policy
//! behaves.
//!
//! Two policies ship:
//!
//! * [`LruKReplacer`] — classic LRU-K: the victim is the evictable page with
//!   the largest *backward k-distance* (the age of its k-th most recent
//!   access).  Pages with fewer than `k` recorded accesses have infinite
//!   distance and are evicted first, oldest first access first.  `k = 1` is
//!   plain LRU.
//! * [`FifoReplacer`] — insertion order only; re-accessing a page does not
//!   save it.  The cheapest policy, and the adversarial baseline the paged
//!   conformance suite uses to prove answers never depend on eviction order.
//!
//! The choice is a [`PoolConfig`](crate::PoolConfig) knob
//! ([`ReplacerPolicy`]); custom policies plug in through
//! [`BufferPool::with_replacer`](crate::BufferPool::with_replacer).

use crate::disk::PageId;
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, VecDeque};

/// An eviction policy the [`BufferPool`](crate::BufferPool) consults.
///
/// The pool drives the protocol: [`record_access`](Replacer::record_access)
/// on every fetch of a resident-or-inserted page,
/// [`set_evictable`](Replacer::set_evictable) as pins are taken and released,
/// [`victim`](Replacer::victim) when it must make room, and
/// [`remove`](Replacer::remove) when a frame leaves the table for any other
/// reason.  A replacer must never name a page whose latest
/// `set_evictable(id, false)` has not been reverted — that is the
/// pinned-frame-never-evicted invariant the query engine's pin/unpin
/// protocol rides on.
///
/// Correctness of query *answers* never depends on the policy: eviction only
/// moves pages between memory and the virtual disk, and every read goes
/// through the pool either way.  `tests/paged_conformance.rs` proptests
/// exactly this with an adversarial replacer.
pub trait Replacer: Send + std::fmt::Debug {
    /// Notes one access of `id`, creating the entry (evictable) if new.
    fn record_access(&mut self, id: PageId);

    /// Marks `id` evictable or not.  Unknown ids are ignored.
    fn set_evictable(&mut self, id: PageId, evictable: bool);

    /// Forgets `id` entirely (the pool dropped the frame without asking for a
    /// victim).  Unknown ids are ignored.
    fn remove(&mut self, id: PageId);

    /// Chooses, removes and returns the next victim among the evictable
    /// tracked pages, or `None` when every tracked page is unevictable.
    fn victim(&mut self) -> Option<PageId>;

    /// Number of pages currently tracked (evictable or not).
    fn tracked(&self) -> usize;
}

/// Which [`Replacer`] a [`PoolConfig`](crate::PoolConfig) builds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ReplacerPolicy {
    /// LRU-K with the given `k` (history depth); `LruK(1)` is plain LRU.
    LruK(usize),
    /// First-in-first-out by insertion; re-access does not refresh.
    Fifo,
}

impl Default for ReplacerPolicy {
    /// LRU-2: scan-resistant (one streaming sweep cannot flush the pages the
    /// executors re-read every quantum), at the cost of one extra timestamp
    /// per frame.
    fn default() -> Self {
        ReplacerPolicy::LruK(2)
    }
}

impl ReplacerPolicy {
    /// Plain LRU (`LruK(1)`), the pre-buffer-manager pool behaviour.
    pub fn lru() -> Self {
        ReplacerPolicy::LruK(1)
    }

    /// Builds the replacer this policy names.
    pub fn build(self) -> Box<dyn Replacer> {
        match self {
            ReplacerPolicy::LruK(k) => Box::new(LruKReplacer::new(k)),
            ReplacerPolicy::Fifo => Box::new(FifoReplacer::new()),
        }
    }
}

#[derive(Debug)]
struct LruKEntry {
    /// The ticks of the up-to-`k` most recent accesses, oldest first.
    history: VecDeque<u64>,
    evictable: bool,
}

/// The LRU-K policy: evict the evictable page whose k-th most recent access
/// is oldest; pages with fewer than `k` accesses count as infinitely old and
/// go first (earliest first access breaks ties among them).
#[derive(Debug)]
pub struct LruKReplacer {
    k: usize,
    tick: u64,
    entries: HashMap<PageId, LruKEntry>,
}

impl LruKReplacer {
    /// Creates an LRU-K replacer; `k` is clamped to at least 1.
    pub fn new(k: usize) -> Self {
        LruKReplacer { k: k.max(1), tick: 0, entries: HashMap::new() }
    }
}

impl Replacer for LruKReplacer {
    fn record_access(&mut self, id: PageId) {
        self.tick += 1;
        let tick = self.tick;
        let k = self.k;
        let entry = self
            .entries
            .entry(id)
            .or_insert_with(|| LruKEntry { history: VecDeque::with_capacity(k), evictable: true });
        if entry.history.len() == k {
            entry.history.pop_front();
        }
        entry.history.push_back(tick);
    }

    fn set_evictable(&mut self, id: PageId, evictable: bool) {
        if let Some(entry) = self.entries.get_mut(&id) {
            entry.evictable = evictable;
        }
    }

    fn remove(&mut self, id: PageId) {
        self.entries.remove(&id);
    }

    fn victim(&mut self) -> Option<PageId> {
        // (has full history, k-distance reference tick, id): pages with a
        // short history sort first (infinite k-distance), then by the oldest
        // retained access; the id tie-break cannot fire (ticks are unique)
        // but keeps the order total for future policies.
        let victim = self
            .entries
            .iter()
            .filter(|(_, e)| e.evictable)
            .map(|(&id, e)| {
                let full = e.history.len() == self.k;
                (full, e.history.front().copied().unwrap_or(0), id)
            })
            .min()?
            .2;
        self.entries.remove(&victim);
        Some(victim)
    }

    fn tracked(&self) -> usize {
        self.entries.len()
    }
}

/// The FIFO policy: evict in insertion order, skipping unevictable frames in
/// place (a pinned frame keeps its queue position for when it unpins).
#[derive(Debug, Default)]
pub struct FifoReplacer {
    /// Tracked pages in insertion order.
    queue: VecDeque<PageId>,
    evictable: HashMap<PageId, bool>,
}

impl FifoReplacer {
    /// Creates an empty FIFO replacer.
    pub fn new() -> Self {
        FifoReplacer::default()
    }
}

impl Replacer for FifoReplacer {
    fn record_access(&mut self, id: PageId) {
        if let std::collections::hash_map::Entry::Vacant(slot) = self.evictable.entry(id) {
            slot.insert(true);
            self.queue.push_back(id);
        }
    }

    fn set_evictable(&mut self, id: PageId, evictable: bool) {
        if let Some(flag) = self.evictable.get_mut(&id) {
            *flag = evictable;
        }
    }

    fn remove(&mut self, id: PageId) {
        if self.evictable.remove(&id).is_some() {
            self.queue.retain(|&q| q != id);
        }
    }

    fn victim(&mut self) -> Option<PageId> {
        let pos = self.queue.iter().position(|id| self.evictable[id])?;
        let id = self.queue.remove(pos).expect("position came from the queue");
        self.evictable.remove(&id);
        Some(id)
    }

    fn tracked(&self) -> usize {
        self.queue.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// LRU-1 degenerates to plain LRU: victims come out least-recently-used.
    #[test]
    fn lru_1_evicts_least_recently_used() {
        let mut r = LruKReplacer::new(1);
        for id in [10, 20, 30] {
            r.record_access(id);
        }
        r.record_access(10); // order is now 20, 30, 10
        assert_eq!(r.victim(), Some(20));
        assert_eq!(r.victim(), Some(30));
        assert_eq!(r.victim(), Some(10));
        assert_eq!(r.victim(), None);
        assert_eq!(r.tracked(), 0);
    }

    /// The canonical LRU-2 sequence: a page swept once (short history) is
    /// sacrificed before a page accessed twice long ago.
    #[test]
    fn lru_2_prefers_short_history_then_oldest_penultimate_access() {
        let mut r = LruKReplacer::new(2);
        // Accesses: a a b c b — a has history [1,2], b [3,5], c [4].
        r.record_access(1); // a
        r.record_access(1); // a
        r.record_access(2); // b
        r.record_access(3); // c
        r.record_access(2); // b
                            // c has <2 accesses: infinite distance, evicted first.
        assert_eq!(r.victim(), Some(3));
        // a's 2nd-most-recent access (tick 1) is older than b's (tick 3).
        assert_eq!(r.victim(), Some(1));
        assert_eq!(r.victim(), Some(2));
    }

    /// Among several short-history pages, the earliest first access goes
    /// first (the tail of a scan survives longest).
    #[test]
    fn lru_k_breaks_infinite_distance_ties_by_first_access() {
        let mut r = LruKReplacer::new(3);
        for id in [7, 8, 9] {
            r.record_access(id);
        }
        r.record_access(7); // still only 2 of 3 accesses: still infinite
        assert_eq!(r.victim(), Some(7), "oldest first access wins the tie");
        assert_eq!(r.victim(), Some(8));
    }

    /// A full-history page re-accessed slides its window: eviction tracks the
    /// k-th most recent access, not the first ever.
    #[test]
    fn lru_k_window_slides_on_reaccess() {
        let mut r = LruKReplacer::new(2);
        r.record_access(1); // t1
        r.record_access(2); // t2
        r.record_access(1); // t3: 1's window [1,3]
        r.record_access(2); // t4: 2's window [2,4]
        r.record_access(1); // t5: 1's window [3,5] — now younger than 2's
        assert_eq!(r.victim(), Some(2));
        assert_eq!(r.victim(), Some(1));
    }

    #[test]
    fn fifo_ignores_reaccess() {
        let mut r = FifoReplacer::new();
        for id in [10, 20, 30] {
            r.record_access(id);
        }
        r.record_access(10); // does NOT refresh 10
        assert_eq!(r.victim(), Some(10));
        assert_eq!(r.victim(), Some(20));
        assert_eq!(r.victim(), Some(30));
        assert_eq!(r.victim(), None);
    }

    /// The invariant every policy must honour: an unevictable page is never
    /// the victim, and becomes eligible again once released — keeping its
    /// policy position (FIFO: original queue slot; LRU-K: its history).
    #[test]
    fn pinned_pages_are_never_victims() {
        for policy in [ReplacerPolicy::LruK(1), ReplacerPolicy::LruK(2), ReplacerPolicy::Fifo] {
            let mut r = policy.build();
            for id in [1, 2, 3] {
                r.record_access(id);
            }
            r.set_evictable(1, false);
            assert_eq!(r.victim(), Some(2), "{policy:?} skips the pinned head");
            assert_eq!(r.victim(), Some(3), "{policy:?}");
            assert_eq!(r.victim(), None, "{policy:?}: only a pinned page remains");
            assert_eq!(r.tracked(), 1, "{policy:?}: the pinned page stays tracked");
            r.set_evictable(1, true);
            assert_eq!(r.victim(), Some(1), "{policy:?}: released page is eligible again");
        }
    }

    #[test]
    fn remove_forgets_without_counting_as_eviction() {
        for policy in [ReplacerPolicy::default(), ReplacerPolicy::Fifo] {
            let mut r = policy.build();
            r.record_access(5);
            r.record_access(6);
            r.remove(5);
            r.remove(999); // unknown ids are ignored
            assert_eq!(r.tracked(), 1);
            assert_eq!(r.victim(), Some(6));
        }
    }

    #[test]
    fn policy_knob_builds_the_right_replacer() {
        assert_eq!(ReplacerPolicy::default(), ReplacerPolicy::LruK(2));
        assert_eq!(ReplacerPolicy::lru(), ReplacerPolicy::LruK(1));
        // k = 0 clamps to 1 rather than panicking.
        let mut r = LruKReplacer::new(0);
        r.record_access(1);
        assert_eq!(r.victim(), Some(1));
    }
}
