//! # trace-storage
//!
//! The storage substrate used by the index-construction cost analysis (Section
//! 4.3) and the memory-size sensitivity experiment (Figure 7.6) of *Top-k Queries
//! over Digital Traces*.
//!
//! Real deployments of the paper's system ingest billions of raw trace records
//! that are not organised by entity; before the MinSigTree can be built they are
//! sorted by entity with a B-way external merge sort, and at query time the leaf
//! evaluation reads entity traces from disk through a bounded buffer pool.  This
//! crate provides those pieces against a deterministic in-process "virtual disk"
//! so that I/O behaviour (pages read/written, sort passes, buffer-pool hit rates)
//! is measurable and reproducible without depending on the machine's actual
//! storage hardware:
//!
//! * [`codec`] — the fixed-width binary trace record format;
//! * [`page`] — 8 KiB slotted pages of records;
//! * [`disk`] — the virtual disk with read/write accounting;
//! * [`sort`] — B-way external merge sort with pass counting (Section 4.3);
//! * [`pool`] — the buffer manager: a byte-budgeted page cache with pin/unpin
//!   and a simulated miss penalty;
//! * [`replacer`] — pluggable eviction policies (LRU-K, FIFO) behind the
//!   [`Replacer`] trait;
//! * [`store`] — the entity-ordered [`PagedTraceStore`] used by the paged query
//!   path of the `minsig` crate;
//! * [`segment`] — the checksummed, length-prefixed segment file format that
//!   backs every on-disk artefact ([`save_trace_set`]/[`load_trace_set`] here,
//!   the persisted index snapshot in `minsig::persist`);
//! * [`log`] — the LSN'd, fsync'd append-only write-ahead log under the
//!   durable ingest path of the `minsig` crate (O(batch) commits between
//!   O(shard) checkpoints).

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod codec;
pub mod disk;
pub mod log;
pub mod page;
pub mod pool;
pub mod replacer;
pub mod segment;
pub mod sort;
pub mod store;

pub use codec::TraceRecord;
pub use disk::{DiskStats, PageId, VirtualDisk};
pub use log::{LogConfig, LogManager, LogRecord, LOG_MAGIC, LOG_VERSION};
pub use page::{Page, PAGE_SIZE};
pub use pool::{BufferPool, PinnedPages, PoolConfig, PoolStats};
pub use replacer::{FifoReplacer, LruKReplacer, Replacer, ReplacerPolicy};
pub use segment::{crc32, SegmentError, SegmentReader, SegmentWriter};
pub use sort::{external_sort, predicted_sort_io, SortStats};
pub use store::{
    load_trace_set, save_trace_set, PagedTraceStore, StoreStats, TRACE_SET_MAGIC, TRACE_SET_VERSION,
};
