//! An LRU buffer pool with a byte budget and simulated miss latency.
//!
//! Figure 7.6 of the paper studies search time as the memory allocated to the
//! system varies from 10 % to 100 % of the raw data size.  To reproduce that
//! experiment deterministically, page misses are charged a configurable
//! *simulated* latency; the harness reports the resulting simulated elapsed time
//! alongside the raw hit/miss counts, so the shape of the curve does not depend on
//! the benchmarking machine's cache hierarchy.
//!
//! ```
//! use trace_storage::{BufferPool, Page, PoolConfig, VirtualDisk, PAGE_SIZE};
//!
//! let disk = VirtualDisk::new();
//! let pages: Vec<_> = (0..4).map(|_| disk.write_page(&Page::new())).collect();
//!
//! // Budget for exactly two pages: the third distinct page evicts the LRU one.
//! let pool = BufferPool::new(&disk, PoolConfig {
//!     capacity_bytes: 2 * PAGE_SIZE,
//!     ..PoolConfig::default()
//! });
//! pool.get(pages[0]); // miss
//! pool.get(pages[1]); // miss
//! pool.get(pages[0]); // hit
//! pool.get(pages[2]); // miss, evicts pages[1]
//! pool.get(pages[1]); // miss again
//! let stats = pool.stats();
//! assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 4, 2));
//! assert!(stats.hit_rate() > 0.19 && stats.hit_rate() < 0.21);
//! ```

use crate::disk::{PageId, VirtualDisk};
use crate::page::{Page, PAGE_SIZE};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of a [`BufferPool`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolConfig {
    /// Maximum amount of page data kept in memory, in bytes.
    pub capacity_bytes: usize,
    /// Simulated latency charged per page miss, in microseconds.
    pub miss_latency_us: u64,
    /// Simulated latency charged per page hit, in microseconds.
    pub hit_latency_us: u64,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            capacity_bytes: 64 * PAGE_SIZE,
            // Rough HDD-era numbers: a miss is ~100x more expensive than a hit.
            miss_latency_us: 2_000,
            hit_latency_us: 20,
        }
    }
}

impl PoolConfig {
    /// A pool sized as a fraction of a dataset of `data_bytes` bytes (the x-axis
    /// of Figure 7.6).
    pub fn with_memory_fraction(data_bytes: usize, fraction: f64) -> Self {
        let capacity = ((data_bytes as f64 * fraction) as usize).max(PAGE_SIZE);
        PoolConfig { capacity_bytes: capacity, ..PoolConfig::default() }
    }

    /// Number of whole pages that fit in the budget (at least one).
    pub fn capacity_pages(&self) -> usize {
        (self.capacity_bytes / PAGE_SIZE).max(1)
    }
}

/// Counters describing buffer-pool behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolStats {
    /// Page requests served from memory.
    pub hits: u64,
    /// Page requests that had to read the virtual disk.
    pub misses: u64,
    /// Pages evicted to stay within budget.
    pub evictions: u64,
    /// Total simulated latency in microseconds.
    pub simulated_us: u64,
}

impl PoolStats {
    /// Hit rate in `[0, 1]`; zero when no request has been made.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Default)]
struct PoolInner {
    /// Cached pages and the LRU tick at which they were last used.
    cache: HashMap<PageId, (Page, u64)>,
    tick: u64,
    stats: PoolStats,
}

/// An LRU page cache in front of a [`VirtualDisk`].
#[derive(Debug)]
pub struct BufferPool<'d> {
    disk: &'d VirtualDisk,
    config: PoolConfig,
    inner: Mutex<PoolInner>,
}

impl<'d> BufferPool<'d> {
    /// Creates a pool over a disk.
    pub fn new(disk: &'d VirtualDisk, config: PoolConfig) -> Self {
        BufferPool { disk, config, inner: Mutex::new(PoolInner::default()) }
    }

    /// The pool configuration.
    pub fn config(&self) -> PoolConfig {
        self.config
    }

    /// Fetches a page, from cache when possible.
    pub fn get(&self, id: PageId) -> Page {
        let mut inner = self.inner.lock();
        inner.tick += 1;
        let tick = inner.tick;
        if let Some((page, last_used)) = inner.cache.get_mut(&id) {
            *last_used = tick;
            let page = page.clone();
            inner.stats.hits += 1;
            inner.stats.simulated_us += self.config.hit_latency_us;
            return page;
        }
        // Miss: read from disk, possibly evicting the least recently used page.
        let page = self.disk.read_page(id);
        inner.stats.misses += 1;
        inner.stats.simulated_us += self.config.miss_latency_us;
        let capacity = self.config.capacity_pages();
        while inner.cache.len() >= capacity {
            if let Some((&victim, _)) =
                inner.cache.iter().min_by_key(|(_, (_, last_used))| *last_used)
            {
                inner.cache.remove(&victim);
                inner.stats.evictions += 1;
            } else {
                break;
            }
        }
        inner.cache.insert(id, (page.clone(), tick));
        page
    }

    /// Current statistics.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().stats
    }

    /// Resets the statistics (cached pages are kept).
    pub fn reset_stats(&self) {
        self.inner.lock().stats = PoolStats::default();
    }

    /// Number of pages currently cached.
    pub fn cached_pages(&self) -> usize {
        self.inner.lock().cache.len()
    }
}

// The parallel query engine hands one pool to many worker threads; this
// compile-time assertion keeps the pool (and, transitively, the disk and its
// frozen pages) shareable by `&` reference.
const _: fn() = || {
    fn assert_sync_send<T: Sync + Send>() {}
    assert_sync_send::<BufferPool<'static>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::TraceRecord;

    fn disk_with_pages(n: u64) -> VirtualDisk {
        let disk = VirtualDisk::new();
        for i in 0..n {
            let page: Page = (0..4).map(|j| TraceRecord::new(i * 10 + j, 0, 0, 1)).collect();
            disk.write_page(&page);
        }
        disk.reset_stats();
        disk
    }

    #[test]
    fn repeated_access_hits_the_cache() {
        let disk = disk_with_pages(4);
        let pool = BufferPool::new(&disk, PoolConfig::default());
        let a = pool.get(0);
        let b = pool.get(0);
        assert_eq!(a.records(), b.records());
        let stats = pool.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(disk.stats().reads, 1);
    }

    #[test]
    fn capacity_limits_cached_pages_and_evicts_lru() {
        let disk = disk_with_pages(10);
        let config =
            PoolConfig { capacity_bytes: 2 * PAGE_SIZE, miss_latency_us: 0, hit_latency_us: 0 };
        let pool = BufferPool::new(&disk, config);
        pool.get(0);
        pool.get(1);
        pool.get(2); // evicts page 0 (LRU)
        assert_eq!(pool.cached_pages(), 2);
        assert_eq!(pool.stats().evictions, 1);
        // Page 1 is still cached, page 0 is not.
        pool.get(1);
        assert_eq!(pool.stats().hits, 1);
        pool.get(0);
        assert_eq!(pool.stats().misses, 4);
    }

    #[test]
    fn simulated_latency_accumulates() {
        let disk = disk_with_pages(3);
        let config =
            PoolConfig { capacity_bytes: PAGE_SIZE, miss_latency_us: 100, hit_latency_us: 1 };
        let pool = BufferPool::new(&disk, config);
        pool.get(0);
        pool.get(0);
        pool.get(1);
        let stats = pool.stats();
        assert_eq!(stats.simulated_us, 100 + 1 + 100);
        assert!(stats.hit_rate() > 0.0 && stats.hit_rate() < 1.0);
    }

    #[test]
    fn larger_budgets_never_increase_misses() {
        let disk = disk_with_pages(32);
        // A fixed access pattern with locality.
        let pattern: Vec<PageId> = (0..200).map(|i| (i % 20) as PageId).collect();
        let mut previous_misses = u64::MAX;
        for pages in [2usize, 8, 32] {
            let config = PoolConfig {
                capacity_bytes: pages * PAGE_SIZE,
                miss_latency_us: 0,
                hit_latency_us: 0,
            };
            let pool = BufferPool::new(&disk, config);
            for &p in &pattern {
                pool.get(p);
            }
            let misses = pool.stats().misses;
            assert!(misses <= previous_misses, "more memory should not miss more");
            previous_misses = misses;
        }
        assert_eq!(previous_misses, 20, "full-size pool misses only cold reads");
    }

    #[test]
    fn memory_fraction_config_is_monotone() {
        let small = PoolConfig::with_memory_fraction(100 * PAGE_SIZE, 0.1);
        let large = PoolConfig::with_memory_fraction(100 * PAGE_SIZE, 0.9);
        assert!(small.capacity_pages() < large.capacity_pages());
        assert!(small.capacity_pages() >= 1);
    }

    #[test]
    fn hit_rate_of_untouched_pool_is_zero() {
        let disk = disk_with_pages(1);
        let pool = BufferPool::new(&disk, PoolConfig::default());
        assert_eq!(pool.stats().hit_rate(), 0.0);
    }

    #[test]
    fn concurrent_readers_share_one_pool() {
        let disk = disk_with_pages(16);
        let pool = BufferPool::new(&disk, PoolConfig::default());
        let threads = 8;
        let reads_per_thread = 200u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let pool = &pool;
                scope.spawn(move || {
                    for i in 0..reads_per_thread {
                        let id = (t + i) % 16;
                        let page = pool.get(id);
                        // Every record of page `id` carries entity `id * 10 + j`.
                        assert!(page.records().iter().all(|r| r.entity / 10 == id));
                    }
                });
            }
        });
        let stats = pool.stats();
        assert_eq!(stats.hits + stats.misses, threads * reads_per_thread);
        // All 16 pages fit in the default budget: every page misses exactly once.
        assert_eq!(stats.misses, 16);
    }
}
