//! The buffer manager: a byte-budgeted page cache with pluggable eviction,
//! pin/unpin, and simulated miss latency.
//!
//! Figure 7.6 of the paper studies search time as the memory allocated to the
//! system varies from 10 % to 100 % of the raw data size.  To reproduce that
//! experiment deterministically, page misses are charged a configurable
//! *simulated* latency; the harness reports the resulting simulated elapsed time
//! alongside the raw hit/miss counts, so the shape of the curve does not depend on
//! the benchmarking machine's cache hierarchy.
//!
//! The pool keeps a frame table (resident pages plus their pin counts) and
//! delegates victim selection to a [`Replacer`] chosen by
//! [`PoolConfig::replacer`] — LRU-K by default, FIFO as the adversarial
//! baseline (see [`crate::replacer`]).  A frame with a positive pin count is
//! **never evicted**: query executors pin the pages they re-read across
//! scheduling quanta ([`BufferPool::pin`] / [`BufferPool::unpin`], or the RAII
//! [`PinnedPages`] guard) and the pool overcommits its budget rather than
//! drop a pinned frame when everything resident is pinned.
//!
//! ```
//! use trace_storage::{BufferPool, Page, PoolConfig, VirtualDisk, PAGE_SIZE};
//!
//! let disk = VirtualDisk::new();
//! let pages: Vec<_> = (0..4).map(|_| disk.write_page(&Page::new())).collect();
//!
//! // Budget for exactly two pages: the third distinct page evicts one.
//! let pool = BufferPool::new(&disk, PoolConfig {
//!     capacity_bytes: 2 * PAGE_SIZE,
//!     ..PoolConfig::default()
//! });
//! pool.get(pages[0]); // miss
//! pool.get(pages[1]); // miss
//! pool.get(pages[0]); // hit
//! pool.get(pages[2]); // miss, evicts pages[1]
//! pool.get(pages[1]); // miss again
//! let stats = pool.stats();
//! assert_eq!((stats.hits, stats.misses, stats.evictions), (1, 4, 2));
//! assert!(stats.hit_rate() > 0.19 && stats.hit_rate() < 0.21);
//!
//! // A pinned frame survives any amount of cache pressure.
//! let pinned = pool.pin_pages([pages[3]]);
//! pool.get(pages[0]);
//! pool.get(pages[1]);
//! pool.get(pages[2]);
//! assert!(pool.is_resident(pages[3]));
//! assert_eq!(pool.pinned_frames(), 1);
//! drop(pinned); // released: pages[3] is fair game again
//! assert_eq!(pool.pinned_frames(), 0);
//! ```

use crate::disk::{PageId, VirtualDisk};
use crate::page::{Page, PAGE_SIZE};
use crate::replacer::{Replacer, ReplacerPolicy};
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Configuration of a [`BufferPool`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolConfig {
    /// Maximum amount of page data kept in memory, in bytes.  Pinned frames
    /// may transiently overcommit the budget (a pinned frame is never
    /// evicted).
    pub capacity_bytes: usize,
    /// Simulated latency charged per page miss, in microseconds.
    pub miss_latency_us: u64,
    /// Simulated latency charged per page hit, in microseconds.
    pub hit_latency_us: u64,
    /// The eviction policy (default LRU-2; see [`ReplacerPolicy`]).
    pub replacer: ReplacerPolicy,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            capacity_bytes: 64 * PAGE_SIZE,
            // Rough HDD-era numbers: a miss is ~100x more expensive than a hit.
            miss_latency_us: 2_000,
            hit_latency_us: 20,
            replacer: ReplacerPolicy::default(),
        }
    }
}

impl PoolConfig {
    /// A pool sized as a fraction of a dataset of `data_bytes` bytes (the x-axis
    /// of Figure 7.6).
    pub fn with_memory_fraction(data_bytes: usize, fraction: f64) -> Self {
        let capacity = ((data_bytes as f64 * fraction) as usize).max(PAGE_SIZE);
        PoolConfig { capacity_bytes: capacity, ..PoolConfig::default() }
    }

    /// The same budget under a different eviction policy.
    pub fn with_replacer(self, replacer: ReplacerPolicy) -> Self {
        PoolConfig { replacer, ..self }
    }

    /// Number of whole pages that fit in the budget (at least one).
    pub fn capacity_pages(&self) -> usize {
        (self.capacity_bytes / PAGE_SIZE).max(1)
    }
}

/// Counters describing buffer-pool behaviour.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoolStats {
    /// Page requests served from memory.
    pub hits: u64,
    /// Page requests that had to read the virtual disk.
    pub misses: u64,
    /// Pages evicted to stay within budget.
    pub evictions: u64,
    /// Total simulated latency in microseconds.
    pub simulated_us: u64,
}

impl PoolStats {
    /// Hit rate in `[0, 1]`; zero when no request has been made.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// The counter deltas since `earlier` (used to attribute pool work to one
    /// query when many share a pool; saturating, so concurrent resets cannot
    /// underflow).
    pub fn since(&self, earlier: &PoolStats) -> PoolStats {
        PoolStats {
            hits: self.hits.saturating_sub(earlier.hits),
            misses: self.misses.saturating_sub(earlier.misses),
            evictions: self.evictions.saturating_sub(earlier.evictions),
            simulated_us: self.simulated_us.saturating_sub(earlier.simulated_us),
        }
    }
}

/// One resident page and its pin count.
#[derive(Debug)]
struct Frame {
    page: Page,
    pins: u32,
}

#[derive(Debug)]
struct PoolInner {
    frames: HashMap<PageId, Frame>,
    replacer: Box<dyn Replacer>,
    stats: PoolStats,
}

/// A page cache in front of a [`VirtualDisk`] with pluggable eviction and
/// pin/unpin — see the [module docs](crate::pool).
#[derive(Debug)]
pub struct BufferPool<'d> {
    disk: &'d VirtualDisk,
    config: PoolConfig,
    inner: Mutex<PoolInner>,
}

impl<'d> BufferPool<'d> {
    /// Creates a pool over a disk with the replacer `config` names.
    pub fn new(disk: &'d VirtualDisk, config: PoolConfig) -> Self {
        Self::with_replacer(disk, config, config.replacer.build())
    }

    /// Creates a pool with an explicit (possibly custom) [`Replacer`],
    /// ignoring `config.replacer` — the hook the conformance suite uses to
    /// prove answers never depend on eviction decisions.
    pub fn with_replacer(
        disk: &'d VirtualDisk,
        config: PoolConfig,
        replacer: Box<dyn Replacer>,
    ) -> Self {
        BufferPool {
            disk,
            config,
            inner: Mutex::new(PoolInner {
                frames: HashMap::new(),
                replacer,
                stats: PoolStats::default(),
            }),
        }
    }

    /// The pool configuration.
    pub fn config(&self) -> PoolConfig {
        self.config
    }

    /// Fetches a page, from cache when possible, without pinning it.
    pub fn get(&self, id: PageId) -> Page {
        self.fetch(id, false)
    }

    /// Fetches a page and pins its frame: until a matching [`unpin`], the
    /// frame is never chosen for eviction — even beyond the byte budget.
    /// Pins nest (each `pin` needs one `unpin`).
    ///
    /// [`unpin`]: BufferPool::unpin
    pub fn pin(&self, id: PageId) -> Page {
        self.fetch(id, true)
    }

    /// Releases one pin on `id`; at zero pins the frame becomes evictable
    /// again.  Returns `false` (and does nothing) when the frame was not
    /// pinned — a protocol violation worth surfacing in tests.
    pub fn unpin(&self, id: PageId) -> bool {
        let mut inner = self.inner.lock();
        let Some(frame) = inner.frames.get_mut(&id) else { return false };
        if frame.pins == 0 {
            return false;
        }
        frame.pins -= 1;
        if frame.pins == 0 {
            inner.replacer.set_evictable(id, true);
        }
        true
    }

    /// Pins every page of `ids` (fetching as needed) and returns a guard that
    /// releases all the pins when dropped.  Duplicate ids pin (and later
    /// unpin) once per occurrence, so the guard composes with manual pins.
    pub fn pin_pages<I: IntoIterator<Item = PageId>>(&self, ids: I) -> PinnedPages<'_, 'd> {
        let pages: Vec<PageId> = ids.into_iter().collect();
        for &id in &pages {
            self.pin(id);
        }
        PinnedPages { pool: self, pages }
    }

    fn fetch(&self, id: PageId, pin: bool) -> Page {
        let mut inner = self.inner.lock();
        if inner.frames.contains_key(&id) {
            inner.stats.hits += 1;
            inner.stats.simulated_us += self.config.hit_latency_us;
            inner.replacer.record_access(id);
            let frame = inner.frames.get_mut(&id).expect("frame is resident");
            if pin {
                frame.pins += 1;
            }
            let page = frame.page.clone();
            if pin {
                inner.replacer.set_evictable(id, false);
            }
            return page;
        }
        // Miss: make room (unless everything resident is pinned — then the
        // budget is overcommitted rather than a pinned frame dropped), read
        // from disk, insert.
        inner.stats.misses += 1;
        inner.stats.simulated_us += self.config.miss_latency_us;
        let capacity = self.config.capacity_pages();
        // Budget for rejected victims: a misbehaving custom replacer that
        // keeps naming pinned (or non-resident) pages must not spin this
        // loop forever — after one rejection per resident frame the pool
        // overcommits instead, exactly as if `victim()` had returned `None`.
        let mut rejections = inner.frames.len() + 1;
        while inner.frames.len() >= capacity {
            let Some(victim) = inner.replacer.victim() else { break };
            match inner.frames.get(&victim).map(|f| f.pins) {
                Some(0) => {
                    inner.frames.remove(&victim);
                    inner.stats.evictions += 1;
                    continue;
                }
                // The pinned-never-victim invariant is enforced, not merely
                // asserted: skip the bad victim and re-mark it unevictable
                // so a conforming replacer stops offering it.
                Some(_) => inner.replacer.set_evictable(victim, false),
                // A victim the pool does not hold: scrub the stale entry.
                None => inner.replacer.remove(victim),
            }
            rejections -= 1;
            if rejections == 0 {
                break;
            }
        }
        let page = self.disk.read_page(id);
        inner.frames.insert(id, Frame { page: page.clone(), pins: u32::from(pin) });
        inner.replacer.record_access(id);
        if pin {
            inner.replacer.set_evictable(id, false);
        }
        page
    }

    /// Current statistics.
    pub fn stats(&self) -> PoolStats {
        self.inner.lock().stats
    }

    /// Resets the statistics (cached pages and pins are kept).
    pub fn reset_stats(&self) {
        self.inner.lock().stats = PoolStats::default();
    }

    /// Number of pages currently cached.
    pub fn cached_pages(&self) -> usize {
        self.inner.lock().frames.len()
    }

    /// True when `id` currently occupies a frame.
    pub fn is_resident(&self, id: PageId) -> bool {
        self.inner.lock().frames.contains_key(&id)
    }

    /// How many of `ids` currently occupy frames (one lock for the whole
    /// probe — what the I/O-aware query planner uses to estimate a shard's
    /// resident vs. cold pages).
    pub fn resident_count(&self, ids: &[PageId]) -> usize {
        let inner = self.inner.lock();
        ids.iter().filter(|id| inner.frames.contains_key(id)).count()
    }

    /// Number of frames with at least one outstanding pin.  Zero after every
    /// query has released its pins — the "no torn pins" invariant the
    /// concurrency stress suite asserts.
    pub fn pinned_frames(&self) -> usize {
        self.inner.lock().frames.values().filter(|f| f.pins > 0).count()
    }
}

/// RAII pins over a set of pages: every page stays resident for the guard's
/// lifetime and all pins are released on drop.  Obtained from
/// [`BufferPool::pin_pages`]; the paged query paths hold one of these across
/// all executor `step` quanta and drop it when the query finishes.
#[derive(Debug)]
pub struct PinnedPages<'p, 'd> {
    pool: &'p BufferPool<'d>,
    pages: Vec<PageId>,
}

impl PinnedPages<'_, '_> {
    /// The pinned page ids (in pin order, duplicates preserved).
    pub fn pages(&self) -> &[PageId] {
        &self.pages
    }
}

impl Drop for PinnedPages<'_, '_> {
    fn drop(&mut self) {
        for &id in &self.pages {
            let released = self.pool.unpin(id);
            debug_assert!(released, "guard pins are released exactly once");
        }
    }
}

// The parallel query engine hands one pool to many worker threads; this
// compile-time assertion keeps the pool (and, transitively, the disk and its
// frozen pages) shareable by `&` reference.
const _: fn() = || {
    fn assert_sync_send<T: Sync + Send>() {}
    assert_sync_send::<BufferPool<'static>>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::TraceRecord;

    fn disk_with_pages(n: u64) -> VirtualDisk {
        let disk = VirtualDisk::new();
        for i in 0..n {
            let page: Page = (0..4).map(|j| TraceRecord::new(i * 10 + j, 0, 0, 1)).collect();
            disk.write_page(&page);
        }
        disk.reset_stats();
        disk
    }

    fn tiny(pages: usize, replacer: ReplacerPolicy) -> PoolConfig {
        PoolConfig {
            capacity_bytes: pages * PAGE_SIZE,
            miss_latency_us: 0,
            hit_latency_us: 0,
            replacer,
        }
    }

    #[test]
    fn repeated_access_hits_the_cache() {
        let disk = disk_with_pages(4);
        let pool = BufferPool::new(&disk, PoolConfig::default());
        let a = pool.get(0);
        let b = pool.get(0);
        assert_eq!(a.records(), b.records());
        let stats = pool.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(disk.stats().reads, 1);
    }

    #[test]
    fn capacity_limits_cached_pages_and_evicts_coldest() {
        for replacer in [ReplacerPolicy::lru(), ReplacerPolicy::default(), ReplacerPolicy::Fifo] {
            let pool_disk = disk_with_pages(10);
            let pool = BufferPool::new(&pool_disk, tiny(2, replacer));
            pool.get(0);
            pool.get(1);
            pool.get(2); // evicts page 0 under all three policies
            assert_eq!(pool.cached_pages(), 2, "{replacer:?}");
            assert_eq!(pool.stats().evictions, 1, "{replacer:?}");
            // Page 1 is still cached, page 0 is not.
            pool.get(1);
            assert_eq!(pool.stats().hits, 1, "{replacer:?}");
            pool.get(0);
            assert_eq!(pool.stats().misses, 4, "{replacer:?}");
        }
    }

    #[test]
    fn simulated_latency_accumulates() {
        let disk = disk_with_pages(3);
        let config = PoolConfig {
            capacity_bytes: PAGE_SIZE,
            miss_latency_us: 100,
            hit_latency_us: 1,
            replacer: ReplacerPolicy::default(),
        };
        let pool = BufferPool::new(&disk, config);
        pool.get(0);
        pool.get(0);
        pool.get(1);
        let stats = pool.stats();
        assert_eq!(stats.simulated_us, 100 + 1 + 100);
        assert!(stats.hit_rate() > 0.0 && stats.hit_rate() < 1.0);
    }

    #[test]
    fn larger_budgets_never_increase_misses() {
        let disk = disk_with_pages(32);
        // A fixed access pattern with locality.
        let pattern: Vec<PageId> = (0..200).map(|i| (i % 20) as PageId).collect();
        for replacer in [ReplacerPolicy::lru(), ReplacerPolicy::default(), ReplacerPolicy::Fifo] {
            let mut previous_misses = u64::MAX;
            for pages in [2usize, 8, 32] {
                let pool = BufferPool::new(&disk, tiny(pages, replacer));
                for &p in &pattern {
                    pool.get(p);
                }
                let misses = pool.stats().misses;
                assert!(misses <= previous_misses, "{replacer:?}: more memory missed more");
                previous_misses = misses;
            }
            assert_eq!(previous_misses, 20, "{replacer:?}: full-size pool misses only cold reads");
        }
    }

    #[test]
    fn memory_fraction_config_is_monotone() {
        let small = PoolConfig::with_memory_fraction(100 * PAGE_SIZE, 0.1);
        let large = PoolConfig::with_memory_fraction(100 * PAGE_SIZE, 0.9);
        assert!(small.capacity_pages() < large.capacity_pages());
        assert!(small.capacity_pages() >= 1);
        assert_eq!(small.with_replacer(ReplacerPolicy::Fifo).replacer, ReplacerPolicy::Fifo);
    }

    #[test]
    fn hit_rate_of_untouched_pool_is_zero() {
        let disk = disk_with_pages(1);
        let pool = BufferPool::new(&disk, PoolConfig::default());
        assert_eq!(pool.stats().hit_rate(), 0.0);
    }

    #[test]
    fn stats_since_subtracts_saturating() {
        let before = PoolStats { hits: 5, misses: 3, evictions: 1, simulated_us: 70 };
        let after = PoolStats { hits: 9, misses: 3, evictions: 2, simulated_us: 90 };
        assert_eq!(
            after.since(&before),
            PoolStats { hits: 4, misses: 0, evictions: 1, simulated_us: 20 }
        );
        // A reset in between cannot underflow.
        assert_eq!(PoolStats::default().since(&before), PoolStats::default());
    }

    /// The buffer-manager invariant: a pinned frame survives arbitrary
    /// pressure; once every frame is pinned the pool overcommits its budget
    /// instead of dropping one.
    #[test]
    fn pinned_frames_are_never_evicted() {
        for replacer in [ReplacerPolicy::lru(), ReplacerPolicy::default(), ReplacerPolicy::Fifo] {
            let disk = disk_with_pages(12);
            let pool = BufferPool::new(&disk, tiny(2, replacer));
            pool.pin(0);
            assert_eq!(pool.pinned_frames(), 1, "{replacer:?}");
            // Sweep far past the budget: page 0 must stay resident.
            for id in 1..12u64 {
                pool.get(id);
            }
            assert!(pool.is_resident(0), "{replacer:?}: pinned frame was evicted");
            assert_eq!(pool.cached_pages(), 2, "{replacer:?}: unpinned frames still cycle");
            // Pin a second page: the whole budget is now pinned, so a third
            // page overcommits rather than evicting either.
            let last = pool.cached_pages();
            pool.pin(5);
            assert!(pool.is_resident(5), "{replacer:?}");
            pool.get(7);
            assert!(pool.is_resident(0) && pool.is_resident(5), "{replacer:?}");
            assert!(pool.cached_pages() > last.min(2), "{replacer:?}: overcommitted");
            // Release both; pressure evicts them again.
            assert!(pool.unpin(0) && pool.unpin(5), "{replacer:?}");
            assert_eq!(pool.pinned_frames(), 0, "{replacer:?}");
            for id in 8..12u64 {
                pool.get(id);
            }
            assert!(!pool.is_resident(0), "{replacer:?}: released frame became evictable");
        }
    }

    #[test]
    fn pins_nest_and_unpin_reports_protocol_violations() {
        let disk = disk_with_pages(4);
        let pool = BufferPool::new(&disk, tiny(1, ReplacerPolicy::default()));
        pool.pin(0);
        pool.pin(0);
        assert_eq!(pool.pinned_frames(), 1);
        assert!(pool.unpin(0));
        // Still pinned once: pressure cannot evict it.
        pool.get(1);
        pool.get(2);
        assert!(pool.is_resident(0));
        assert!(pool.unpin(0));
        assert!(!pool.unpin(0), "third unpin has no pin to release");
        assert!(!pool.unpin(99), "never-fetched page is not pinned");
    }

    #[test]
    fn pinned_pages_guard_releases_on_drop() {
        let disk = disk_with_pages(6);
        let pool = BufferPool::new(&disk, tiny(2, ReplacerPolicy::Fifo));
        {
            let guard = pool.pin_pages([0u64, 1, 0]);
            assert_eq!(guard.pages(), &[0, 1, 0]);
            assert_eq!(pool.pinned_frames(), 2);
            for id in 2..6u64 {
                pool.get(id);
            }
            assert!(pool.is_resident(0) && pool.is_resident(1));
        }
        assert_eq!(pool.pinned_frames(), 0, "guard dropped every pin");
        // An empty guard is fine.
        drop(pool.pin_pages(std::iter::empty()));
        assert_eq!(pool.pinned_frames(), 0);
    }

    #[test]
    fn concurrent_readers_share_one_pool() {
        let disk = disk_with_pages(16);
        let pool = BufferPool::new(&disk, PoolConfig::default());
        let threads = 8;
        let reads_per_thread = 200u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let pool = &pool;
                scope.spawn(move || {
                    for i in 0..reads_per_thread {
                        let id = (t + i) % 16;
                        let page = pool.get(id);
                        // Every record of page `id` carries entity `id * 10 + j`.
                        assert!(page.records().iter().all(|r| r.entity / 10 == id));
                    }
                });
            }
        });
        let stats = pool.stats();
        assert_eq!(stats.hits + stats.misses, threads * reads_per_thread);
        // All 16 pages fit in the default budget: every page misses exactly once.
        assert_eq!(stats.misses, 16);
    }

    /// A replacer that violates every rule: it always names page 0 as the
    /// victim (pinned or not), never removes it from its own bookkeeping,
    /// and ignores `set_evictable`.  The pool must survive it in release
    /// builds — the pinned frame stays resident with its pins intact and
    /// the pool overcommits rather than evicting it or looping forever.
    #[derive(Debug)]
    struct MaliciousReplacer;

    impl Replacer for MaliciousReplacer {
        fn record_access(&mut self, _id: PageId) {}
        fn set_evictable(&mut self, _id: PageId, _evictable: bool) {}
        fn remove(&mut self, _id: PageId) {}
        fn victim(&mut self) -> Option<PageId> {
            Some(0)
        }
        fn tracked(&self) -> usize {
            0
        }
    }

    #[test]
    fn malicious_replacer_cannot_evict_a_pinned_frame() {
        let disk = disk_with_pages(9);
        let pool = BufferPool::with_replacer(
            &disk,
            tiny(2, ReplacerPolicy::Fifo),
            Box::new(MaliciousReplacer),
        );
        pool.pin(0);
        assert_eq!(pool.pinned_frames(), 1);
        // Every miss past the budget asks the replacer, which always answers
        // with the pinned page 0: the pool must refuse, terminate its
        // eviction loop, and overcommit.
        for id in 1..8u64 {
            pool.get(id);
        }
        assert!(pool.is_resident(0), "pinned frame was evicted by a malicious replacer");
        assert_eq!(pool.pinned_frames(), 1, "pin accounting was corrupted");
        assert_eq!(pool.cached_pages(), 8, "pool overcommits rather than dropping the pin");
        assert_eq!(pool.stats().evictions, 0, "a rejected victim is not an eviction");
        // The pin is still released by the normal protocol.
        assert!(pool.unpin(0));
        assert_eq!(pool.pinned_frames(), 0);
        // Once unpinned, page 0 is a legitimate victim again and the next
        // miss does evict it.
        pool.get(8);
        assert!(!pool.is_resident(0), "released frame became evictable again");
        assert!(pool.stats().evictions > 0);
    }

    /// A replacer that names victims the pool does not even hold; the pool
    /// must scrub them and fall back to overcommitting, never panic.
    #[derive(Debug)]
    struct PhantomReplacer(u64);

    impl Replacer for PhantomReplacer {
        fn record_access(&mut self, _id: PageId) {}
        fn set_evictable(&mut self, _id: PageId, _evictable: bool) {}
        fn remove(&mut self, _id: PageId) {}
        fn victim(&mut self) -> Option<PageId> {
            self.0 += 1;
            Some(1_000 + self.0) // never resident
        }
        fn tracked(&self) -> usize {
            0
        }
    }

    #[test]
    fn non_resident_victims_are_scrubbed_not_evicted() {
        let disk = disk_with_pages(6);
        let pool = BufferPool::with_replacer(
            &disk,
            tiny(2, ReplacerPolicy::Fifo),
            Box::new(PhantomReplacer(0)),
        );
        for id in 0..6u64 {
            pool.get(id);
        }
        assert_eq!(pool.cached_pages(), 6, "phantom victims force overcommit");
        assert_eq!(pool.stats().evictions, 0);
        assert_eq!(pool.stats().misses, 6);
    }

    #[test]
    fn concurrent_pinners_never_lose_their_frames() {
        let disk = disk_with_pages(16);
        // A 2-page budget under 8 threads that pin one page each while
        // sweeping the rest: massive overcommit, zero lost pins.
        let pool = BufferPool::new(&disk, tiny(2, ReplacerPolicy::default()));
        std::thread::scope(|scope| {
            for t in 0..8u64 {
                let pool = &pool;
                scope.spawn(move || {
                    let guard = pool.pin_pages([t]);
                    for i in 0..100u64 {
                        pool.get((t + i) % 16);
                        assert!(pool.is_resident(t), "pinned page vanished mid-sweep");
                    }
                    drop(guard);
                });
            }
        });
        assert_eq!(pool.pinned_frames(), 0);
    }
}
