//! Fixed-width binary encoding of raw trace records.
//!
//! A raw digital-trace record is the tuple `<entity, location, start, end>` as it
//! would arrive from a WiFi controller or check-in feed.  Records are encoded
//! little-endian into exactly [`TraceRecord::ENCODED_LEN`] bytes so that a page
//! holds a predictable number of records and the external sort can reason about
//! page counts precisely.

use bytes::{Buf, BufMut};
use trace_model::{EntityId, Period, PresenceInstance, SpatialUnitId};

/// A raw trace record: one presence of one entity at one spatial unit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TraceRecord {
    /// The entity id.
    pub entity: u64,
    /// The base spatial unit of the presence.
    pub unit: SpatialUnitId,
    /// Start tick (inclusive).
    pub start: u64,
    /// End tick (exclusive).
    pub end: u64,
}

impl TraceRecord {
    /// Encoded size in bytes: 8 (entity) + 4 (unit) + 8 (start) + 8 (end).
    pub const ENCODED_LEN: usize = 28;

    /// Creates a record, normalising an inverted period to an empty one.
    pub fn new(entity: u64, unit: SpatialUnitId, start: u64, end: u64) -> Self {
        TraceRecord { entity, unit, start, end: end.max(start) }
    }

    /// Builds a record from a [`PresenceInstance`].
    pub fn from_presence(pi: &PresenceInstance) -> Self {
        TraceRecord {
            entity: pi.entity.raw(),
            unit: pi.unit,
            start: pi.period.start,
            end: pi.period.end,
        }
    }

    /// Converts back into a [`PresenceInstance`].
    pub fn to_presence(&self) -> PresenceInstance {
        PresenceInstance::new(
            EntityId(self.entity),
            self.unit,
            Period::new(self.start, self.end).expect("record periods are normalised"),
        )
    }

    /// Encodes the record into a buffer.
    pub fn encode<B: BufMut>(&self, buf: &mut B) {
        buf.put_u64_le(self.entity);
        buf.put_u32_le(self.unit);
        buf.put_u64_le(self.start);
        buf.put_u64_le(self.end);
    }

    /// Decodes a record from a buffer (which must contain at least
    /// [`Self::ENCODED_LEN`] bytes).
    pub fn decode<B: Buf>(buf: &mut B) -> Self {
        let entity = buf.get_u64_le();
        let unit = buf.get_u32_le();
        let start = buf.get_u64_le();
        let end = buf.get_u64_le();
        TraceRecord { entity, unit, start, end }
    }

    /// Duration of the presence in ticks.
    pub fn duration(&self) -> u64 {
        self.end - self.start
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn encoded_len_matches_constant() {
        let mut buf = Vec::new();
        TraceRecord::new(1, 2, 3, 4).encode(&mut buf);
        assert_eq!(buf.len(), TraceRecord::ENCODED_LEN);
    }

    #[test]
    fn round_trip_through_bytes() {
        let rec = TraceRecord::new(u64::MAX, u32::MAX, 123, 456);
        let mut buf = Vec::new();
        rec.encode(&mut buf);
        let decoded = TraceRecord::decode(&mut buf.as_slice());
        assert_eq!(decoded, rec);
    }

    #[test]
    fn inverted_periods_are_normalised() {
        let rec = TraceRecord::new(1, 1, 100, 50);
        assert_eq!(rec.end, 100);
        assert_eq!(rec.duration(), 0);
    }

    #[test]
    fn presence_round_trip() {
        let pi = PresenceInstance::new(EntityId(9), 4, Period::new(10, 70).unwrap());
        let rec = TraceRecord::from_presence(&pi);
        assert_eq!(rec.to_presence(), pi);
    }

    #[test]
    fn ordering_is_entity_major() {
        let a = TraceRecord::new(1, 9, 100, 200);
        let b = TraceRecord::new(2, 0, 0, 1);
        assert!(a < b);
    }

    proptest! {
        #[test]
        fn codec_round_trip_prop(entity in any::<u64>(), unit in any::<u32>(),
                                 start in any::<u64>(), len in 0u64..1_000_000) {
            let rec = TraceRecord::new(entity, unit, start, start.saturating_add(len));
            let mut buf = Vec::new();
            rec.encode(&mut buf);
            prop_assert_eq!(buf.len(), TraceRecord::ENCODED_LEN);
            let decoded = TraceRecord::decode(&mut buf.as_slice());
            prop_assert_eq!(decoded, rec);
        }
    }
}
