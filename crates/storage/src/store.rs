//! The entity-ordered paged trace store.
//!
//! After the external sort has organised raw records by entity (Section 4.3), the
//! records are packed into pages and a small directory maps every entity to the
//! pages holding its trace.  The `minsig` paged query path reads candidate
//! entities' traces through a [`BufferPool`] over this store, which is how the
//! memory-size experiment of Figure 7.6 measures the effect of the buffer budget.

use crate::codec::TraceRecord;
use crate::disk::{PageId, VirtualDisk};
use crate::page::{Page, PAGE_SIZE};
use crate::pool::{BufferPool, PoolConfig, PoolStats};
use crate::sort::{external_sort, SortStats};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::ops::Range;
use trace_model::{DigitalTrace, EntityId, TraceSet};

/// Summary statistics of a store build.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Number of records stored.
    pub records: u64,
    /// Number of data pages.
    pub pages: u64,
    /// Statistics of the external sort that organised the data by entity.
    pub sort: SortStats,
}

impl StoreStats {
    /// Size of the stored data in bytes.
    pub fn data_bytes(&self) -> usize {
        self.pages as usize * PAGE_SIZE
    }
}

/// An entity-ordered, paged store of raw trace records.
#[derive(Debug)]
pub struct PagedTraceStore {
    disk: VirtualDisk,
    /// Data pages in entity order.
    data_pages: Vec<PageId>,
    /// For each entity: the range of indices into `data_pages` that contain at
    /// least one of its records.
    directory: BTreeMap<EntityId, Range<u32>>,
    stats: StoreStats,
}

impl PagedTraceStore {
    /// Builds a store from a trace set: flattens the presence instances into raw
    /// records, external-sorts them by entity with `buffer_pages` pages of memory,
    /// and packs the sorted records into pages.
    pub fn build(traces: &TraceSet, buffer_pages: usize) -> Self {
        let records: Vec<TraceRecord> = traces
            .iter()
            .flat_map(|(_, trace)| trace.instances().iter().map(TraceRecord::from_presence))
            .collect();
        Self::build_from_records(records, buffer_pages)
    }

    /// Builds a store from raw (unsorted) records.
    pub fn build_from_records(records: Vec<TraceRecord>, buffer_pages: usize) -> Self {
        let disk = VirtualDisk::new();
        let num_records = records.len() as u64;
        let (sorted, sort_stats) = external_sort(&disk, records, buffer_pages);

        let mut data_pages: Vec<PageId> = Vec::new();
        let mut directory: BTreeMap<EntityId, Range<u32>> = BTreeMap::new();
        let mut current = Page::new();
        let mut current_index = 0u32;
        let note =
            |entity: u64, page_index: u32, directory: &mut BTreeMap<EntityId, Range<u32>>| {
                directory
                    .entry(EntityId(entity))
                    .and_modify(|r| r.end = page_index + 1)
                    .or_insert(page_index..page_index + 1);
            };
        for rec in &sorted {
            if !current.push(*rec) {
                data_pages.push(disk.write_page(&current));
                current = Page::new();
                current_index += 1;
                assert!(current.push(*rec), "fresh page accepts a record");
            }
            note(rec.entity, current_index, &mut directory);
        }
        if !current.is_empty() {
            data_pages.push(disk.write_page(&current));
        }

        let stats =
            StoreStats { records: num_records, pages: data_pages.len() as u64, sort: sort_stats };
        disk.reset_stats();
        PagedTraceStore { disk, data_pages, directory, stats }
    }

    /// Build statistics.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// The underlying virtual disk (for I/O accounting in experiments).
    pub fn disk(&self) -> &VirtualDisk {
        &self.disk
    }

    /// Number of entities with stored records.
    pub fn num_entities(&self) -> usize {
        self.directory.len()
    }

    /// Size of the raw data in bytes (used to size buffer pools as a fraction of
    /// the data, as in Figure 7.6).
    pub fn data_bytes(&self) -> usize {
        self.stats.data_bytes()
    }

    /// Creates a buffer pool over this store's disk.
    pub fn pool(&self, config: PoolConfig) -> BufferPool<'_> {
        BufferPool::new(&self.disk, config)
    }

    /// Reads an entity's trace through the given buffer pool, returning `None`
    /// when the entity has no records.
    pub fn read_trace(&self, pool: &BufferPool<'_>, entity: EntityId) -> Option<DigitalTrace> {
        let range = self.directory.get(&entity)?.clone();
        let mut trace = DigitalTrace::new();
        for idx in range {
            let page = pool.get(self.data_pages[idx as usize]);
            for rec in page.records() {
                if rec.entity == entity.raw() {
                    trace.push(rec.to_presence());
                }
            }
        }
        Some(trace)
    }

    /// Reads an entity's trace without a pool (every page access is a disk read).
    pub fn read_trace_uncached(&self, entity: EntityId) -> Option<DigitalTrace> {
        let range = self.directory.get(&entity)?.clone();
        let mut trace = DigitalTrace::new();
        for idx in range {
            let page = self.disk.read_page(self.data_pages[idx as usize]);
            for rec in page.records() {
                if rec.entity == entity.raw() {
                    trace.push(rec.to_presence());
                }
            }
        }
        Some(trace)
    }

    /// Convenience: the pool statistics after a workload (simply forwards).
    pub fn pool_stats(pool: &BufferPool<'_>) -> PoolStats {
        pool.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_model::{Period, PresenceInstance, SpIndex};

    fn sample_traces(entities: u64, instances_per_entity: u64) -> (SpIndex, TraceSet) {
        let sp = SpIndex::uniform(2, &[4]).unwrap();
        let base = sp.base_units().to_vec();
        let mut ts = TraceSet::new(60);
        for e in 0..entities {
            for i in 0..instances_per_entity {
                let unit = base[((e + i) % base.len() as u64) as usize];
                let start = i * 120;
                ts.record(PresenceInstance::new(
                    EntityId(e),
                    unit,
                    Period::new(start, start + 60).unwrap(),
                ));
            }
        }
        (sp, ts)
    }

    #[test]
    fn build_and_read_back_every_entity() {
        let (_sp, ts) = sample_traces(20, 5);
        let store = PagedTraceStore::build(&ts, 4);
        assert_eq!(store.num_entities(), 20);
        assert_eq!(store.stats().records, 100);
        let pool = store.pool(PoolConfig::default());
        for (entity, trace) in ts.iter() {
            let read = store.read_trace(&pool, entity).expect("entity exists");
            assert_eq!(read.len(), trace.len());
            assert_eq!(read.total_duration(), trace.total_duration());
        }
    }

    #[test]
    fn missing_entity_returns_none() {
        let (_sp, ts) = sample_traces(3, 2);
        let store = PagedTraceStore::build(&ts, 4);
        let pool = store.pool(PoolConfig::default());
        assert!(store.read_trace(&pool, EntityId(999)).is_none());
        assert!(store.read_trace_uncached(EntityId(999)).is_none());
    }

    #[test]
    fn cached_and_uncached_reads_agree() {
        let (_sp, ts) = sample_traces(10, 8);
        let store = PagedTraceStore::build(&ts, 4);
        let pool = store.pool(PoolConfig::default());
        for entity in ts.entities() {
            let cached = store.read_trace(&pool, entity).unwrap();
            let uncached = store.read_trace_uncached(entity).unwrap();
            assert_eq!(cached.instances(), uncached.instances());
        }
    }

    #[test]
    fn smaller_pools_miss_more() {
        // Enough data to span many pages.
        let (_sp, ts) = sample_traces(500, 40);
        let store = PagedTraceStore::build(&ts, 8);
        assert!(store.stats().pages > 8, "need multiple pages for this test");
        let workload: Vec<EntityId> = ts.entities().collect();

        let mut misses = Vec::new();
        for fraction in [0.05, 0.5, 1.0] {
            let pool = store.pool(PoolConfig::with_memory_fraction(store.data_bytes(), fraction));
            // Two sweeps: the second sweep benefits from caching when memory allows.
            for _ in 0..2 {
                for &e in &workload {
                    store.read_trace(&pool, e);
                }
            }
            misses.push(pool.stats().misses);
        }
        assert!(misses[0] >= misses[1]);
        assert!(misses[1] >= misses[2]);
        assert!(misses[0] > misses[2], "10x memory difference must show up in misses");
    }

    #[test]
    fn empty_trace_set_builds_an_empty_store() {
        let ts = TraceSet::new(60);
        let store = PagedTraceStore::build(&ts, 4);
        assert_eq!(store.num_entities(), 0);
        assert_eq!(store.stats().records, 0);
        assert_eq!(store.stats().pages, 0);
    }
}
