//! The entity-ordered paged trace store.
//!
//! After the external sort has organised raw records by entity (Section 4.3), the
//! records are packed into pages and a small directory maps every entity to the
//! pages holding its trace.  The `minsig` paged query path reads candidate
//! entities' traces through a [`BufferPool`] over this store, which is how the
//! memory-size experiment of Figure 7.6 measures the effect of the buffer budget.

use crate::codec::TraceRecord;
use crate::disk::{PageId, VirtualDisk};
use crate::page::{pack_pages, Page, PAGE_SIZE, RECORDS_PER_PAGE};
use crate::pool::{BufferPool, PinnedPages, PoolConfig, PoolStats};
use crate::segment::{self, Cursor, SegmentError};
use crate::sort::{external_sort, SortStats};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::ops::Range;
use std::path::Path;
use trace_model::{DigitalTrace, EntityId, TraceSet};

/// Summary statistics of a store build.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StoreStats {
    /// Number of records stored.
    pub records: u64,
    /// Number of data pages.
    pub pages: u64,
    /// Statistics of the external sort that organised the data by entity.
    pub sort: SortStats,
}

impl StoreStats {
    /// Size of the stored data in bytes.
    pub fn data_bytes(&self) -> usize {
        self.pages as usize * PAGE_SIZE
    }
}

/// An entity-ordered, paged store of raw trace records.
#[derive(Debug)]
pub struct PagedTraceStore {
    disk: VirtualDisk,
    /// Data pages in entity order.
    data_pages: Vec<PageId>,
    /// For each entity: the range of indices into `data_pages` that contain at
    /// least one of its records.
    directory: BTreeMap<EntityId, Range<u32>>,
    stats: StoreStats,
}

impl PagedTraceStore {
    /// Builds a store from a trace set: flattens the presence instances into raw
    /// records, external-sorts them by entity with `buffer_pages` pages of memory,
    /// and packs the sorted records into pages.
    pub fn build(traces: &TraceSet, buffer_pages: usize) -> Self {
        let records: Vec<TraceRecord> = traces
            .iter()
            .flat_map(|(_, trace)| trace.instances().iter().map(TraceRecord::from_presence))
            .collect();
        Self::build_from_records(records, buffer_pages)
    }

    /// Builds a store from raw (unsorted) records.
    pub fn build_from_records(records: Vec<TraceRecord>, buffer_pages: usize) -> Self {
        let disk = VirtualDisk::new();
        let num_records = records.len() as u64;
        let (sorted, sort_stats) = external_sort(&disk, records, buffer_pages);

        let mut data_pages: Vec<PageId> = Vec::new();
        let mut directory: BTreeMap<EntityId, Range<u32>> = BTreeMap::new();
        let mut current = Page::new();
        let mut current_index = 0u32;
        let note =
            |entity: u64, page_index: u32, directory: &mut BTreeMap<EntityId, Range<u32>>| {
                directory
                    .entry(EntityId(entity))
                    .and_modify(|r| r.end = page_index + 1)
                    .or_insert(page_index..page_index + 1);
            };
        for rec in &sorted {
            if !current.push(*rec) {
                data_pages.push(disk.write_page(&current));
                current = Page::new();
                current_index += 1;
                assert!(current.push(*rec), "fresh page accepts a record");
            }
            note(rec.entity, current_index, &mut directory);
        }
        if !current.is_empty() {
            data_pages.push(disk.write_page(&current));
        }

        let stats =
            StoreStats { records: num_records, pages: data_pages.len() as u64, sort: sort_stats };
        disk.reset_stats();
        PagedTraceStore { disk, data_pages, directory, stats }
    }

    /// Build statistics.
    pub fn stats(&self) -> StoreStats {
        self.stats
    }

    /// The underlying virtual disk (for I/O accounting in experiments).
    pub fn disk(&self) -> &VirtualDisk {
        &self.disk
    }

    /// Number of entities with stored records.
    pub fn num_entities(&self) -> usize {
        self.directory.len()
    }

    /// Size of the raw data in bytes (used to size buffer pools as a fraction of
    /// the data, as in Figure 7.6).
    pub fn data_bytes(&self) -> usize {
        self.stats.data_bytes()
    }

    /// Creates a buffer pool over this store's disk.
    pub fn pool(&self, config: PoolConfig) -> BufferPool<'_> {
        BufferPool::new(&self.disk, config)
    }

    /// The ids of the pages holding `entity`'s records, in read order (the
    /// directory ranges are contiguous, so this is a borrow, not a copy).
    /// `None` when the entity has no records.
    pub fn trace_pages(&self, entity: EntityId) -> Option<&[PageId]> {
        let range = self.directory.get(&entity)?.clone();
        Some(&self.data_pages[range.start as usize..range.end as usize])
    }

    /// Pins every page of `entity`'s trace in `pool`, keeping the whole trace
    /// resident until the returned guard drops — what the paged query paths
    /// use to hold a query's own trace across executor step quanta.
    pub fn pin_trace<'p, 'd>(
        &self,
        pool: &'p BufferPool<'d>,
        entity: EntityId,
    ) -> Option<PinnedPages<'p, 'd>> {
        Some(pool.pin_pages(self.trace_pages(entity)?.iter().copied()))
    }

    /// Reads an entity's trace through the given buffer pool, returning `None`
    /// when the entity has no records.  Each page is pinned only while its
    /// records are extracted; use [`pin_trace`](Self::pin_trace) to keep a
    /// trace resident longer.
    pub fn read_trace(&self, pool: &BufferPool<'_>, entity: EntityId) -> Option<DigitalTrace> {
        let pages = self.trace_pages(entity)?;
        let mut trace = DigitalTrace::new();
        for &id in pages {
            let page = pool.pin(id);
            for rec in page.records() {
                if rec.entity == entity.raw() {
                    trace.push(rec.to_presence());
                }
            }
            pool.unpin(id);
        }
        Some(trace)
    }

    /// Reads an entity's trace without a pool (every page access is a disk read).
    pub fn read_trace_uncached(&self, entity: EntityId) -> Option<DigitalTrace> {
        let range = self.directory.get(&entity)?.clone();
        let mut trace = DigitalTrace::new();
        for idx in range {
            let page = self.disk.read_page(self.data_pages[idx as usize]);
            for rec in page.records() {
                if rec.entity == entity.raw() {
                    trace.push(rec.to_presence());
                }
            }
        }
        Some(trace)
    }

    /// Convenience: the pool statistics after a workload (simply forwards).
    pub fn pool_stats(pool: &BufferPool<'_>) -> PoolStats {
        pool.stats()
    }
}

// ---------------------------------------------------------------------------
// TraceSet persistence
// ---------------------------------------------------------------------------

/// Magic bytes of a persisted [`TraceSet`] file.
pub const TRACE_SET_MAGIC: [u8; 4] = *b"MSTS";
/// Newest trace-set file format version this build reads and writes.
pub const TRACE_SET_VERSION: u16 = 1;

const TAG_TRACE_META: u32 = 1;
const TAG_TRACE_PAGE: u32 = 2;

/// Persists a [`TraceSet`] to `path` in the checksummed segment format of
/// [`crate::segment`]: one `META` segment (temporal discretisation + record
/// count) followed by one segment per 8 KiB [`Page`] of fixed-width
/// [`TraceRecord`]s.  The write is atomic (temp file + rename).
///
/// ```
/// use trace_model::{EntityId, Period, PresenceInstance, TraceSet};
///
/// let mut traces = TraceSet::new(60);
/// traces.record(PresenceInstance::new(EntityId(1), 0, Period::new(0, 120).unwrap()));
/// let path = std::env::temp_dir().join("traces-doctest.msts");
/// trace_storage::save_trace_set(&path, &traces).unwrap();
/// let reloaded = trace_storage::load_trace_set(&path).unwrap();
/// assert_eq!(reloaded.total_presence_instances(), 1);
/// # std::fs::remove_file(&path).unwrap();
/// ```
pub fn save_trace_set(path: &Path, traces: &TraceSet) -> Result<(), SegmentError> {
    let records = traces
        .iter()
        .flat_map(|(_, trace)| trace.instances().iter().map(TraceRecord::from_presence));
    let pages = pack_pages(records);
    let num_records: u64 = pages.iter().map(|p| p.len() as u64).sum();
    segment::atomic_write(path, TRACE_SET_MAGIC, TRACE_SET_VERSION, |writer| {
        let mut meta = Vec::with_capacity(16);
        meta.extend_from_slice(&traces.ticks_per_unit().to_le_bytes());
        meta.extend_from_slice(&num_records.to_le_bytes());
        writer.write_segment(TAG_TRACE_META, &meta)?;
        for page in &pages {
            writer.write_segment(TAG_TRACE_PAGE, &page.to_bytes())?;
        }
        Ok(())
    })
}

/// Loads a [`TraceSet`] previously written by [`save_trace_set`], verifying
/// the magic, version, every page checksum and the total record count.  A
/// file truncated mid-write yields [`SegmentError::Truncated`] or
/// [`SegmentError::ChecksumMismatch`], never a partially loaded trace set.
pub fn load_trace_set(path: &Path) -> Result<TraceSet, SegmentError> {
    let mut reader = segment::open_file(path, TRACE_SET_MAGIC, TRACE_SET_VERSION)?;
    let mut traces: Option<TraceSet> = None;
    let mut expected_records = 0u64;
    let mut loaded_records = 0u64;
    while let Some((tag, payload)) = reader.next_segment()? {
        match tag {
            TAG_TRACE_META => {
                if traces.is_some() {
                    return Err(SegmentError::Malformed("duplicate META segment".into()));
                }
                let mut cursor = Cursor::new(&payload);
                let ticks_per_unit = cursor.u64()?;
                expected_records = cursor.u64()?;
                cursor.expect_end()?;
                if ticks_per_unit == 0 {
                    return Err(SegmentError::Malformed("ticks_per_unit must be positive".into()));
                }
                traces = Some(TraceSet::new(ticks_per_unit));
            }
            TAG_TRACE_PAGE => {
                let Some(traces) = traces.as_mut() else {
                    return Err(SegmentError::Malformed("PAGE segment before META".into()));
                };
                if payload.len() != PAGE_SIZE {
                    return Err(SegmentError::Malformed(format!(
                        "page segment holds {} bytes, expected {PAGE_SIZE}",
                        payload.len()
                    )));
                }
                let count =
                    u32::from_le_bytes(payload[..4].try_into().expect("4 header bytes")) as usize;
                if count > RECORDS_PER_PAGE {
                    return Err(SegmentError::Malformed(format!(
                        "page declares {count} records, capacity is {RECORDS_PER_PAGE}"
                    )));
                }
                for rec in Page::from_bytes(&payload).records() {
                    traces.record(rec.to_presence());
                    loaded_records += 1;
                }
            }
            other => {
                return Err(SegmentError::Malformed(format!("unknown segment tag {other}")));
            }
        }
    }
    let traces = traces.ok_or_else(|| SegmentError::Malformed("missing META segment".into()))?;
    if loaded_records != expected_records {
        return Err(SegmentError::Malformed(format!(
            "META announces {expected_records} records but {loaded_records} were stored"
        )));
    }
    Ok(traces)
}

#[cfg(test)]
mod tests {
    use super::*;
    use trace_model::{Period, PresenceInstance, SpIndex};

    fn sample_traces(entities: u64, instances_per_entity: u64) -> (SpIndex, TraceSet) {
        let sp = SpIndex::uniform(2, &[4]).unwrap();
        let base = sp.base_units().to_vec();
        let mut ts = TraceSet::new(60);
        for e in 0..entities {
            for i in 0..instances_per_entity {
                let unit = base[((e + i) % base.len() as u64) as usize];
                let start = i * 120;
                ts.record(PresenceInstance::new(
                    EntityId(e),
                    unit,
                    Period::new(start, start + 60).unwrap(),
                ));
            }
        }
        (sp, ts)
    }

    #[test]
    fn build_and_read_back_every_entity() {
        let (_sp, ts) = sample_traces(20, 5);
        let store = PagedTraceStore::build(&ts, 4);
        assert_eq!(store.num_entities(), 20);
        assert_eq!(store.stats().records, 100);
        let pool = store.pool(PoolConfig::default());
        for (entity, trace) in ts.iter() {
            let read = store.read_trace(&pool, entity).expect("entity exists");
            assert_eq!(read.len(), trace.len());
            assert_eq!(read.total_duration(), trace.total_duration());
        }
    }

    #[test]
    fn missing_entity_returns_none() {
        let (_sp, ts) = sample_traces(3, 2);
        let store = PagedTraceStore::build(&ts, 4);
        let pool = store.pool(PoolConfig::default());
        assert!(store.read_trace(&pool, EntityId(999)).is_none());
        assert!(store.read_trace_uncached(EntityId(999)).is_none());
    }

    #[test]
    fn cached_and_uncached_reads_agree() {
        let (_sp, ts) = sample_traces(10, 8);
        let store = PagedTraceStore::build(&ts, 4);
        let pool = store.pool(PoolConfig::default());
        for entity in ts.entities() {
            let cached = store.read_trace(&pool, entity).unwrap();
            let uncached = store.read_trace_uncached(entity).unwrap();
            assert_eq!(cached.instances(), uncached.instances());
        }
    }

    #[test]
    fn trace_pages_match_the_directory_and_pin_trace_holds_them() {
        let (_sp, ts) = sample_traces(200, 30);
        let store = PagedTraceStore::build(&ts, 8);
        assert!(store.stats().pages > 4, "need several pages for this test");
        // A 1-page pool: holding any pinned trace forces the pool to
        // overcommit rather than evict a pinned page.
        let pool = store
            .pool(PoolConfig { capacity_bytes: crate::page::PAGE_SIZE, ..PoolConfig::default() });
        let probe = EntityId(0);
        let pages = store.trace_pages(probe).expect("entity 0 exists").to_vec();
        assert!(!pages.is_empty());
        {
            let guard = store.pin_trace(&pool, probe).expect("entity 0 exists");
            assert_eq!(guard.pages(), &pages[..]);
            // Sweep other entities through the tiny pool: the pinned trace
            // stays resident throughout.
            for e in ts.entities().take(50) {
                store.read_trace(&pool, e);
            }
            assert!(pages.iter().all(|&p| pool.is_resident(p)));
            // Re-reading the pinned trace is all hits.
            let before = pool.stats();
            store.read_trace(&pool, probe).unwrap();
            let delta = pool.stats().since(&before);
            assert_eq!(delta.misses, 0, "pinned trace reads never touch the disk");
        }
        assert_eq!(pool.pinned_frames(), 0, "guard released every pin");
        assert!(store.trace_pages(EntityId(u64::MAX)).is_none());
        assert!(store.pin_trace(&pool, EntityId(u64::MAX)).is_none());
    }

    #[test]
    fn smaller_pools_miss_more() {
        // Enough data to span many pages.
        let (_sp, ts) = sample_traces(500, 40);
        let store = PagedTraceStore::build(&ts, 8);
        assert!(store.stats().pages > 8, "need multiple pages for this test");
        let workload: Vec<EntityId> = ts.entities().collect();

        let mut misses = Vec::new();
        for fraction in [0.05, 0.5, 1.0] {
            let pool = store.pool(PoolConfig::with_memory_fraction(store.data_bytes(), fraction));
            // Two sweeps: the second sweep benefits from caching when memory allows.
            for _ in 0..2 {
                for &e in &workload {
                    store.read_trace(&pool, e);
                }
            }
            misses.push(pool.stats().misses);
        }
        assert!(misses[0] >= misses[1]);
        assert!(misses[1] >= misses[2]);
        assert!(misses[0] > misses[2], "10x memory difference must show up in misses");
    }

    #[test]
    fn empty_trace_set_builds_an_empty_store() {
        let ts = TraceSet::new(60);
        let store = PagedTraceStore::build(&ts, 4);
        assert_eq!(store.num_entities(), 0);
        assert_eq!(store.stats().records, 0);
        assert_eq!(store.stats().pages, 0);
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("store-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn trace_set_file_round_trip() {
        let (_sp, ts) = sample_traces(30, 7);
        let path = temp_path("round-trip.msts");
        save_trace_set(&path, &ts).unwrap();
        let loaded = load_trace_set(&path).unwrap();
        assert_eq!(loaded.ticks_per_unit(), ts.ticks_per_unit());
        assert_eq!(loaded.num_entities(), ts.num_entities());
        assert_eq!(loaded.total_presence_instances(), ts.total_presence_instances());
        for (entity, trace) in ts.iter() {
            assert_eq!(loaded.trace(entity).unwrap().instances(), trace.instances());
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_trace_set_round_trips() {
        let ts = TraceSet::new(7);
        let path = temp_path("empty.msts");
        save_trace_set(&path, &ts).unwrap();
        let loaded = load_trace_set(&path).unwrap();
        assert_eq!(loaded.ticks_per_unit(), 7);
        assert!(loaded.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn truncated_trace_set_file_is_rejected() {
        let (_sp, ts) = sample_traces(200, 10);
        let path = temp_path("truncate.msts");
        save_trace_set(&path, &ts).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        assert!(bytes.len() > PAGE_SIZE, "need at least one full page for this test");
        // Cut the file mid-page: the loader must report an error, not return a
        // partial trace set.
        for cut in [bytes.len() - 1, bytes.len() - PAGE_SIZE / 2, 10, 0] {
            std::fs::write(&path, &bytes[..cut]).unwrap();
            assert!(load_trace_set(&path).is_err(), "cut at {cut} went undetected");
        }
        std::fs::remove_file(&path).unwrap();
    }
}
