//! Fixed-size pages of trace records.

use crate::codec::TraceRecord;
use bytes::{Bytes, BytesMut};

/// The page size in bytes (8 KiB, the common database default).
pub const PAGE_SIZE: usize = 8 * 1024;

/// Number of records that fit in one page.
pub const RECORDS_PER_PAGE: usize = (PAGE_SIZE - Page::HEADER_LEN) / TraceRecord::ENCODED_LEN;

/// A fixed-size page holding up to [`RECORDS_PER_PAGE`] encoded trace records.
///
/// The layout is a 4-byte little-endian record count followed by densely packed
/// records.  Pages are immutable once frozen into [`Bytes`], which is what the
/// virtual disk stores.
#[derive(Debug, Clone, Default)]
pub struct Page {
    records: Vec<TraceRecord>,
}

impl Page {
    /// Size of the page header in bytes (the record count).
    pub const HEADER_LEN: usize = 4;

    /// Creates an empty page.
    pub fn new() -> Self {
        Page { records: Vec::with_capacity(RECORDS_PER_PAGE) }
    }

    /// Number of records currently in the page.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// True when the page holds no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// True when no further record can be appended.
    pub fn is_full(&self) -> bool {
        self.records.len() >= RECORDS_PER_PAGE
    }

    /// Appends a record; returns `false` (and leaves the page unchanged) when the
    /// page is already full.
    pub fn push(&mut self, record: TraceRecord) -> bool {
        if self.is_full() {
            return false;
        }
        self.records.push(record);
        true
    }

    /// The records stored in the page.
    pub fn records(&self) -> &[TraceRecord] {
        &self.records
    }

    /// Serialises the page into exactly [`PAGE_SIZE`] bytes.
    pub fn to_bytes(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(PAGE_SIZE);
        buf.extend_from_slice(&(self.records.len() as u32).to_le_bytes());
        for rec in &self.records {
            rec.encode(&mut buf);
        }
        buf.resize(PAGE_SIZE, 0);
        buf.freeze()
    }

    /// Parses a page from its serialised form.
    ///
    /// # Panics
    /// Panics when the buffer is shorter than the header or the declared record
    /// count does not fit in the buffer.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        assert!(bytes.len() >= Self::HEADER_LEN, "page buffer too small");
        let count = u32::from_le_bytes(bytes[..4].try_into().expect("4 header bytes")) as usize;
        let needed = Self::HEADER_LEN + count * TraceRecord::ENCODED_LEN;
        assert!(bytes.len() >= needed, "page buffer truncated: {} < {needed}", bytes.len());
        let mut cursor = &bytes[Self::HEADER_LEN..needed];
        let mut records = Vec::with_capacity(count);
        for _ in 0..count {
            records.push(TraceRecord::decode(&mut cursor));
        }
        Page { records }
    }
}

impl FromIterator<TraceRecord> for Page {
    fn from_iter<I: IntoIterator<Item = TraceRecord>>(iter: I) -> Self {
        let mut page = Page::new();
        for rec in iter {
            assert!(page.push(rec), "too many records for one page");
        }
        page
    }
}

/// Packs an iterator of records into as many pages as needed, in order.
pub fn pack_pages<I: IntoIterator<Item = TraceRecord>>(records: I) -> Vec<Page> {
    let mut pages = Vec::new();
    let mut current = Page::new();
    for rec in records {
        if !current.push(rec) {
            pages.push(std::mem::take(&mut current));
            current.push(rec);
        }
    }
    if !current.is_empty() {
        pages.push(current);
    }
    pages
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn rec(i: u64) -> TraceRecord {
        TraceRecord::new(i, i as u32, i * 10, i * 10 + 5)
    }

    #[test]
    fn capacity_is_derived_from_sizes() {
        assert_eq!(RECORDS_PER_PAGE, (PAGE_SIZE - 4) / TraceRecord::ENCODED_LEN);
        const { assert!(RECORDS_PER_PAGE > 200, "a page should hold a few hundred records") };
    }

    #[test]
    fn push_until_full() {
        let mut page = Page::new();
        for i in 0..RECORDS_PER_PAGE {
            assert!(page.push(rec(i as u64)));
        }
        assert!(page.is_full());
        assert!(!page.push(rec(0)));
        assert_eq!(page.len(), RECORDS_PER_PAGE);
    }

    #[test]
    fn serialisation_round_trip() {
        let page: Page = (0..100).map(rec).collect();
        let bytes = page.to_bytes();
        assert_eq!(bytes.len(), PAGE_SIZE);
        let parsed = Page::from_bytes(&bytes);
        assert_eq!(parsed.records(), page.records());
    }

    #[test]
    fn empty_page_round_trip() {
        let page = Page::new();
        let parsed = Page::from_bytes(&page.to_bytes());
        assert!(parsed.is_empty());
    }

    #[test]
    #[should_panic(expected = "page buffer too small")]
    fn from_bytes_rejects_tiny_buffers() {
        let _ = Page::from_bytes(&[0u8; 2]);
    }

    #[test]
    fn pack_pages_splits_at_capacity() {
        let n = RECORDS_PER_PAGE + 10;
        let pages = pack_pages((0..n as u64).map(rec));
        assert_eq!(pages.len(), 2);
        assert_eq!(pages[0].len(), RECORDS_PER_PAGE);
        assert_eq!(pages[1].len(), 10);
        // No record lost or duplicated.
        let total: usize = pages.iter().map(Page::len).sum();
        assert_eq!(total, n);
    }

    #[test]
    fn pack_pages_of_empty_input_is_empty() {
        assert!(pack_pages(std::iter::empty()).is_empty());
    }

    proptest! {
        #[test]
        fn pack_preserves_order_and_count(count in 0usize..1000) {
            let records: Vec<TraceRecord> = (0..count as u64).map(rec).collect();
            let pages = pack_pages(records.iter().copied());
            let unpacked: Vec<TraceRecord> =
                pages.iter().flat_map(|p| p.records().iter().copied()).collect();
            prop_assert_eq!(unpacked, records);
        }
    }
}
