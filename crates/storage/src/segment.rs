//! A checksummed, length-prefixed segment file format.
//!
//! This is the durability layer under every on-disk artefact of the workspace:
//! the persisted [`TraceSet`](trace_model::TraceSet) (see
//! [`crate::store::save_trace_set`]) and the persisted `minsig` index snapshot
//! both serialise themselves as a sequence of *segments* inside one file.
//!
//! ## File layout
//!
//! ```text
//! +--------------+-----------------+---------------+
//! | magic (4 B)  | version (u16 le)| flags (u16 le)|   file header
//! +--------------+-----------------+---------------+
//! | tag (u32 le) | len (u64 le)    | payload | crc |   segment 0
//! +--------------+-----------------+---------+-----+
//! | ...                                            |   segment 1..n
//! +------------------------------------------------+
//! | tag = 0      | len = 4         | count   | crc |   END segment
//! +------------------------------------------------+
//! ```
//!
//! Every segment carries a CRC-32 (IEEE) of its payload, and the file is
//! terminated by a distinguished `END` segment whose payload records the
//! number of preceding segments.  A process (or machine) crash mid-write
//! therefore always leaves a detectable state: either the `END` segment is
//! missing ([`SegmentError::Truncated`]) or a partially written segment fails
//! its checksum ([`SegmentError::ChecksumMismatch`]).  Readers never return
//! silently corrupt data.
//!
//! Writers should additionally go through [`atomic_write`], which writes to a
//! temporary sibling file and renames it into place, so an existing file is
//! never clobbered by a failed save.

use std::fs::File;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// The distinguished tag closing every segment file.
pub const END_TAG: u32 = 0;

/// Upper bound on a single segment's payload, as a guard against reading an
/// absurd length field from a corrupt file (1 GiB).
pub const MAX_SEGMENT_LEN: u64 = 1 << 30;

/// Errors produced while reading or writing segment files.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentError {
    /// An underlying I/O error (message of the `std::io::Error`).
    Io(String),
    /// The file does not start with the expected magic bytes.
    BadMagic {
        /// The magic the caller expected.
        expected: [u8; 4],
        /// The bytes actually found.
        found: [u8; 4],
    },
    /// The file's format version is newer than this build understands.
    UnsupportedVersion {
        /// Version recorded in the file.
        found: u16,
        /// Newest version this build can read.
        supported: u16,
    },
    /// The file ends before the announced data (e.g. a crash mid-write).
    Truncated(String),
    /// A segment's payload does not match its stored CRC-32.
    ChecksumMismatch {
        /// Tag of the corrupt segment.
        tag: u32,
    },
    /// The file is structurally invalid (bad lengths, bad counts, bad values).
    Malformed(String),
}

impl std::fmt::Display for SegmentError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SegmentError::Io(msg) => write!(f, "i/o error: {msg}"),
            SegmentError::BadMagic { expected, found } => write!(
                f,
                "bad magic: expected {:?}, found {:?}",
                String::from_utf8_lossy(expected),
                found
            ),
            SegmentError::UnsupportedVersion { found, supported } => {
                write!(f, "file format version {found} is newer than supported version {supported}")
            }
            SegmentError::Truncated(what) => write!(f, "file truncated: {what}"),
            SegmentError::ChecksumMismatch { tag } => {
                write!(f, "checksum mismatch in segment with tag {tag}")
            }
            SegmentError::Malformed(msg) => write!(f, "malformed file: {msg}"),
        }
    }
}

impl std::error::Error for SegmentError {}

impl From<io::Error> for SegmentError {
    fn from(e: io::Error) -> Self {
        if e.kind() == io::ErrorKind::UnexpectedEof {
            SegmentError::Truncated(e.to_string())
        } else {
            SegmentError::Io(e.to_string())
        }
    }
}

/// Result alias for segment-file operations.
pub type Result<T> = std::result::Result<T, SegmentError>;

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3 polynomial, reflected), table-driven.
// ---------------------------------------------------------------------------

const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC32_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE) of a byte slice — the checksum guarding every segment.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

// ---------------------------------------------------------------------------
// Writer
// ---------------------------------------------------------------------------

/// Writes a segment file: header first, then [`write_segment`] per segment,
/// then [`finish`] to append the `END` segment.
///
/// Dropping the writer without calling [`finish`] leaves the file without its
/// terminator, which readers report as [`SegmentError::Truncated`] — exactly
/// the semantics wanted for a crash mid-write.
///
/// [`write_segment`]: SegmentWriter::write_segment
/// [`finish`]: SegmentWriter::finish
#[derive(Debug)]
pub struct SegmentWriter<W: Write> {
    out: W,
    segments: u32,
}

impl<W: Write> SegmentWriter<W> {
    /// Starts a new segment file with the given magic and format version.
    pub fn new(mut out: W, magic: [u8; 4], version: u16) -> Result<Self> {
        out.write_all(&magic)?;
        out.write_all(&version.to_le_bytes())?;
        out.write_all(&0u16.to_le_bytes())?; // flags, reserved
        Ok(SegmentWriter { out, segments: 0 })
    }

    /// Number of segments written so far (excluding the `END` terminator).
    pub fn segments_written(&self) -> u32 {
        self.segments
    }

    /// Appends one tagged, checksummed segment.  `tag` must not be
    /// [`END_TAG`].
    pub fn write_segment(&mut self, tag: u32, payload: &[u8]) -> Result<()> {
        assert_ne!(tag, END_TAG, "tag 0 is reserved for the END segment");
        self.emit(tag, payload)?;
        self.segments += 1;
        Ok(())
    }

    fn emit(&mut self, tag: u32, payload: &[u8]) -> Result<()> {
        self.out.write_all(&tag.to_le_bytes())?;
        self.out.write_all(&(payload.len() as u64).to_le_bytes())?;
        self.out.write_all(payload)?;
        self.out.write_all(&crc32(payload).to_le_bytes())?;
        Ok(())
    }

    /// Writes the `END` segment, flushes, and returns the inner writer.
    pub fn finish(mut self) -> Result<W> {
        let count = self.segments;
        self.emit(END_TAG, &count.to_le_bytes())?;
        self.out.flush()?;
        Ok(self.out)
    }
}

// ---------------------------------------------------------------------------
// Reader
// ---------------------------------------------------------------------------

/// Reads a segment file written by [`SegmentWriter`], validating the magic,
/// the version, every checksum and the `END` terminator.
#[derive(Debug)]
pub struct SegmentReader<R: Read> {
    input: R,
    version: u16,
    segments_read: u32,
    finished: bool,
}

impl<R: Read> SegmentReader<R> {
    /// Opens a segment stream, checking the magic and that the recorded
    /// version is at most `max_version`.
    pub fn new(mut input: R, magic: [u8; 4], max_version: u16) -> Result<Self> {
        let mut found = [0u8; 4];
        input
            .read_exact(&mut found)
            .map_err(|_| SegmentError::Truncated("file shorter than its header".into()))?;
        if found != magic {
            return Err(SegmentError::BadMagic { expected: magic, found });
        }
        let mut buf = [0u8; 2];
        input.read_exact(&mut buf)?;
        let version = u16::from_le_bytes(buf);
        if version > max_version {
            return Err(SegmentError::UnsupportedVersion {
                found: version,
                supported: max_version,
            });
        }
        input.read_exact(&mut buf)?; // flags, reserved
        Ok(SegmentReader { input, version, segments_read: 0, finished: false })
    }

    /// The format version recorded in the file header.
    pub fn version(&self) -> u16 {
        self.version
    }

    /// The next `(tag, payload)` pair, or `None` once the `END` segment has
    /// been consumed.  Payload checksums are verified before returning.
    pub fn next_segment(&mut self) -> Result<Option<(u32, Vec<u8>)>> {
        if self.finished {
            return Ok(None);
        }
        let mut header = [0u8; 12];
        self.input
            .read_exact(&mut header)
            .map_err(|_| SegmentError::Truncated("missing segment header or END marker".into()))?;
        let tag = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
        let len = u64::from_le_bytes(header[4..12].try_into().expect("8 bytes"));
        if len > MAX_SEGMENT_LEN {
            return Err(SegmentError::Malformed(format!(
                "segment with tag {tag} declares {len} bytes (limit {MAX_SEGMENT_LEN})"
            )));
        }
        let mut payload = vec![0u8; len as usize];
        self.input
            .read_exact(&mut payload)
            .map_err(|_| SegmentError::Truncated(format!("segment with tag {tag} cut short")))?;
        let mut crc_buf = [0u8; 4];
        self.input
            .read_exact(&mut crc_buf)
            .map_err(|_| SegmentError::Truncated(format!("checksum of segment {tag} cut short")))?;
        if crc32(&payload) != u32::from_le_bytes(crc_buf) {
            return Err(SegmentError::ChecksumMismatch { tag });
        }
        if tag == END_TAG {
            let mut cursor = Cursor::new(&payload);
            let count = cursor.u32()?;
            cursor.expect_end()?;
            if count != self.segments_read {
                return Err(SegmentError::Malformed(format!(
                    "END segment announces {count} segments but {} were read",
                    self.segments_read
                )));
            }
            // The END marker must really end the stream: trailing bytes mean
            // a concatenated or doctored file.
            let mut probe = [0u8; 1];
            match self.input.read(&mut probe) {
                Ok(0) => {}
                Ok(_) => {
                    return Err(SegmentError::Malformed("data after the END segment".into()));
                }
                Err(e) => return Err(e.into()),
            }
            self.finished = true;
            return Ok(None);
        }
        self.segments_read += 1;
        Ok(Some((tag, payload)))
    }
}

// ---------------------------------------------------------------------------
// Payload cursor
// ---------------------------------------------------------------------------

/// A checked little-endian cursor over a segment payload.
///
/// Unlike the panicking [`bytes::Buf`] accessors, every read returns
/// [`SegmentError::Malformed`] on underflow, so a payload that passes its CRC
/// but is structurally wrong (e.g. written by a buggy encoder) surfaces as an
/// error instead of a panic.
#[derive(Debug)]
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Creates a cursor at the start of a payload.
    pub fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Errors unless the payload has been fully consumed.
    pub fn expect_end(&self) -> Result<()> {
        if self.remaining() != 0 {
            return Err(SegmentError::Malformed(format!(
                "{} trailing bytes after the last field",
                self.remaining()
            )));
        }
        Ok(())
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(SegmentError::Malformed(format!(
                "needed {n} bytes but only {} remain",
                self.remaining()
            )));
        }
        let slice = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }

    /// Reads `n` raw bytes.
    pub fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.take(n)
    }
}

// ---------------------------------------------------------------------------
// File helpers
// ---------------------------------------------------------------------------

/// Writes a segment file atomically: the segments are produced into a
/// uniquely named temporary sibling, the `END` terminator is appended, the
/// file is fsynced, the temporary is renamed over `path`, and the parent
/// directory is fsynced so the rename itself survives a power failure.  A
/// crash anywhere before the rename leaves any existing file at `path`
/// untouched; the unique temp name (pid + per-process counter) keeps
/// concurrent saves to the same path from interleaving into one temp file.
pub fn atomic_write<F>(path: &Path, magic: [u8; 4], version: u16, build: F) -> Result<()>
where
    F: FnOnce(&mut SegmentWriter<BufWriter<File>>) -> Result<()>,
{
    let tmp = sibling_tmp_path(path);
    let result = (|| {
        let file = File::create(&tmp)?;
        let mut writer = SegmentWriter::new(BufWriter::new(file), magic, version)?;
        build(&mut writer)?;
        let file = writer.finish()?;
        file.into_inner().map_err(|e| SegmentError::Io(e.to_string()))?.sync_all()?;
        std::fs::rename(&tmp, path)?;
        // Persist the directory entry: without this the rename may be rolled
        // back by a crash even though the call already reported success.
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            File::open(parent)?.sync_all()?;
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

/// Atomically writes pre-serialised segment-file `bytes` — a complete file
/// image produced by a [`SegmentWriter`] over an in-memory buffer — with the
/// same temp-sibling + fsync + rename + directory-fsync protocol as
/// [`atomic_write`].  Lets callers digest or inspect the exact bytes before
/// committing them, without reading the file back.
pub fn atomic_write_bytes(path: &Path, bytes: &[u8]) -> Result<()> {
    let tmp = sibling_tmp_path(path);
    let result = (|| {
        let mut file = File::create(&tmp)?;
        file.write_all(bytes)?;
        file.sync_all()?;
        std::fs::rename(&tmp, path)?;
        if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            File::open(parent)?.sync_all()?;
        }
        Ok(())
    })();
    if result.is_err() {
        let _ = std::fs::remove_file(&tmp);
    }
    result
}

fn sibling_tmp_path(path: &Path) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_default();
    name.push(format!(".{}.{}.tmp", std::process::id(), COUNTER.fetch_add(1, Ordering::Relaxed)));
    path.with_file_name(name)
}

/// Opens a segment file for reading, validating magic and version.
pub fn open_file(
    path: &Path,
    magic: [u8; 4],
    max_version: u16,
) -> Result<SegmentReader<BufReader<File>>> {
    let file = File::open(path)?;
    SegmentReader::new(BufReader::new(file), magic, max_version)
}

#[cfg(test)]
mod tests {
    use super::*;

    const MAGIC: [u8; 4] = *b"TEST";

    fn write_sample(segments: &[(u32, Vec<u8>)]) -> Vec<u8> {
        let mut writer = SegmentWriter::new(Vec::new(), MAGIC, 1).unwrap();
        for (tag, payload) in segments {
            writer.write_segment(*tag, payload).unwrap();
        }
        writer.finish().unwrap()
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn round_trip_preserves_tags_and_payloads() {
        let segments = vec![(1u32, b"hello".to_vec()), (7, Vec::new()), (2, vec![0u8; 1000])];
        let bytes = write_sample(&segments);
        let mut reader = SegmentReader::new(bytes.as_slice(), MAGIC, 1).unwrap();
        assert_eq!(reader.version(), 1);
        for (tag, payload) in &segments {
            let (t, p) = reader.next_segment().unwrap().unwrap();
            assert_eq!(t, *tag);
            assert_eq!(&p, payload);
        }
        assert!(reader.next_segment().unwrap().is_none());
        // Idempotent after END.
        assert!(reader.next_segment().unwrap().is_none());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let bytes = write_sample(&[(1, b"x".to_vec())]);
        let err = SegmentReader::new(bytes.as_slice(), *b"ELSE", 1).unwrap_err();
        assert!(matches!(err, SegmentError::BadMagic { .. }));
    }

    #[test]
    fn future_versions_are_rejected() {
        let mut writer = SegmentWriter::new(Vec::new(), MAGIC, 9).unwrap();
        writer.write_segment(1, b"x").unwrap();
        let bytes = writer.finish().unwrap();
        let err = SegmentReader::new(bytes.as_slice(), MAGIC, 1).unwrap_err();
        assert_eq!(err, SegmentError::UnsupportedVersion { found: 9, supported: 1 });
    }

    #[test]
    fn flipped_bit_fails_the_checksum() {
        let mut bytes = write_sample(&[(3, b"payload-bytes".to_vec())]);
        // Flip one payload bit (header is 8 bytes, segment header 12).
        bytes[8 + 12 + 3] ^= 0x40;
        let mut reader = SegmentReader::new(bytes.as_slice(), MAGIC, 1).unwrap();
        assert_eq!(reader.next_segment().unwrap_err(), SegmentError::ChecksumMismatch { tag: 3 });
    }

    #[test]
    fn every_truncation_point_is_detected() {
        let bytes = write_sample(&[(1, b"abcdef".to_vec()), (2, b"ghij".to_vec())]);
        for cut in 0..bytes.len() {
            let truncated = &bytes[..cut];
            let outcome = SegmentReader::new(truncated, MAGIC, 1).and_then(|mut r| {
                while r.next_segment()?.is_some() {}
                Ok(())
            });
            assert!(outcome.is_err(), "cut at {cut} went undetected");
        }
        // The full file parses.
        let mut reader = SegmentReader::new(bytes.as_slice(), MAGIC, 1).unwrap();
        while reader.next_segment().unwrap().is_some() {}
    }

    #[test]
    fn missing_end_marker_is_truncation() {
        let mut writer = SegmentWriter::new(Vec::new(), MAGIC, 1).unwrap();
        writer.write_segment(1, b"x").unwrap();
        // No finish(): take the raw buffer as-is.
        let bytes = writer.out;
        let mut reader = SegmentReader::new(bytes.as_slice(), MAGIC, 1).unwrap();
        let first = reader.next_segment().unwrap();
        assert!(first.is_some());
        assert!(matches!(reader.next_segment(), Err(SegmentError::Truncated(_))));
    }

    #[test]
    fn data_after_the_end_marker_is_rejected() {
        let mut bytes = write_sample(&[(1, b"abc".to_vec())]);
        // Concatenate a second valid file after the first.
        bytes.extend_from_slice(&write_sample(&[(2, b"xyz".to_vec())]));
        let mut reader = SegmentReader::new(bytes.as_slice(), MAGIC, 1).unwrap();
        let _ = reader.next_segment().unwrap().unwrap();
        assert!(matches!(reader.next_segment(), Err(SegmentError::Malformed(_))));
    }

    #[test]
    fn absurd_lengths_are_rejected() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&MAGIC);
        bytes.extend_from_slice(&1u16.to_le_bytes());
        bytes.extend_from_slice(&0u16.to_le_bytes());
        bytes.extend_from_slice(&5u32.to_le_bytes());
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        let mut reader = SegmentReader::new(bytes.as_slice(), MAGIC, 1).unwrap();
        assert!(matches!(reader.next_segment(), Err(SegmentError::Malformed(_))));
    }

    #[test]
    fn cursor_reads_are_checked() {
        let mut payload = Vec::new();
        payload.push(7u8);
        payload.extend_from_slice(&300u16.to_le_bytes());
        payload.extend_from_slice(&70_000u32.to_le_bytes());
        payload.extend_from_slice(&u64::MAX.to_le_bytes());
        let mut cursor = Cursor::new(&payload);
        assert_eq!(cursor.u8().unwrap(), 7);
        assert_eq!(cursor.u16().unwrap(), 300);
        assert_eq!(cursor.u32().unwrap(), 70_000);
        assert_eq!(cursor.u64().unwrap(), u64::MAX);
        cursor.expect_end().unwrap();
        assert!(cursor.u8().is_err());
        let mut short = Cursor::new(&payload[..3]);
        let _ = short.u8();
        assert!(short.u64().is_err());
    }

    #[test]
    fn atomic_write_and_open_file_round_trip() {
        let dir = std::env::temp_dir().join(format!("segtest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("sample.seg");
        atomic_write(&path, MAGIC, 1, |w| {
            w.write_segment(4, b"persisted")?;
            Ok(())
        })
        .unwrap();
        let mut reader = open_file(&path, MAGIC, 1).unwrap();
        let (tag, payload) = reader.next_segment().unwrap().unwrap();
        assert_eq!((tag, payload.as_slice()), (4, b"persisted".as_slice()));
        assert!(reader.next_segment().unwrap().is_none());
        // No temporary left behind: the directory holds only the final file.
        let entries: Vec<_> = std::fs::read_dir(&dir).unwrap().map(|e| e.unwrap()).collect();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].path(), path);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
