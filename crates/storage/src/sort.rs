//! B-way external merge sort of trace records (Section 4.3).
//!
//! The cost model in the paper is `2N × (1 + ⌈log_B⌈N/B⌉⌉)` page I/Os, where `N`
//! is the number of pages of raw trace data and `B` the number of buffer pages:
//! every pass reads and writes every page once, there is one run-formation pass,
//! and each merge pass reduces the number of runs by a factor of `B`.
//! [`external_sort`] implements exactly that algorithm against the
//! [`VirtualDisk`], and [`predicted_sort_io`] evaluates the closed-form formula so
//! tests can check the implementation against the model.

use crate::codec::TraceRecord;
use crate::disk::{PageId, VirtualDisk};
use crate::page::{pack_pages, RECORDS_PER_PAGE};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Statistics of one external sort run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SortStats {
    /// Number of input pages (`N`).
    pub input_pages: u64,
    /// Number of passes over the data (run formation + merge passes).
    pub passes: u64,
    /// Pages read during the sort.
    pub pages_read: u64,
    /// Pages written during the sort.
    pub pages_written: u64,
    /// Number of initial sorted runs.
    pub initial_runs: u64,
}

impl SortStats {
    /// Total page I/Os.
    pub fn total_io(&self) -> u64 {
        self.pages_read + self.pages_written
    }
}

/// The paper's closed-form I/O cost: `2N × (1 + ⌈log_B⌈N/B⌉⌉)`.
pub fn predicted_sort_io(n_pages: u64, buffer_pages: u64) -> u64 {
    if n_pages == 0 {
        return 0;
    }
    let b = buffer_pages.max(2);
    let runs = n_pages.div_ceil(b);
    let mut passes = 1u64;
    let mut current = runs;
    while current > 1 {
        current = current.div_ceil(b - 1).min(current.div_ceil(2));
        // Standard B-way merge uses B-1 input buffers per merge pass.
        passes += 1;
    }
    2 * n_pages * passes
}

/// A sorted run stored on the virtual disk as a list of page ids.
#[derive(Debug, Clone)]
struct Run {
    pages: Vec<PageId>,
}

fn write_run(disk: &VirtualDisk, records: Vec<TraceRecord>) -> Run {
    let pages = pack_pages(records).iter().map(|p| disk.write_page(p)).collect();
    Run { pages }
}

fn read_run(disk: &VirtualDisk, run: &Run) -> Vec<TraceRecord> {
    run.pages.iter().flat_map(|&id| disk.read_page(id).records().to_vec()).collect()
}

/// Sorts `records` by `(entity, start, unit)` using a B-way external merge sort
/// with `buffer_pages` pages of memory, spilling runs to `disk`.
///
/// Returns the sorted records and the sort statistics.  `buffer_pages` must be at
/// least 3 (one output buffer plus at least two input buffers), mirroring the
/// classic text-book requirement.
pub fn external_sort(
    disk: &VirtualDisk,
    records: Vec<TraceRecord>,
    buffer_pages: usize,
) -> (Vec<TraceRecord>, SortStats) {
    assert!(buffer_pages >= 3, "external sort needs at least 3 buffer pages");
    let input_pages = (records.len().div_ceil(RECORDS_PER_PAGE)) as u64;
    let mut stats = SortStats { input_pages, ..SortStats::default() };
    if records.is_empty() {
        return (records, stats);
    }

    let before = disk.stats();

    // Pass 0: run formation. Each run holds `buffer_pages` pages worth of records.
    let run_capacity = buffer_pages * RECORDS_PER_PAGE;
    let mut runs: Vec<Run> = Vec::new();
    let mut iter = records.into_iter().peekable();
    while iter.peek().is_some() {
        let mut chunk: Vec<TraceRecord> = Vec::with_capacity(run_capacity);
        for _ in 0..run_capacity {
            match iter.next() {
                Some(r) => chunk.push(r),
                None => break,
            }
        }
        chunk.sort_unstable_by_key(|r| (r.entity, r.start, r.unit, r.end));
        runs.push(write_run(disk, chunk));
    }
    stats.initial_runs = runs.len() as u64;
    stats.passes = 1;

    // Merge passes: B-1 input runs at a time.
    let fan_in = buffer_pages - 1;
    while runs.len() > 1 {
        let mut next_runs = Vec::with_capacity(runs.len().div_ceil(fan_in));
        for group in runs.chunks(fan_in) {
            let merged = merge_runs(disk, group);
            next_runs.push(write_run(disk, merged));
        }
        runs = next_runs;
        stats.passes += 1;
    }

    let sorted = read_run(disk, &runs[0]);
    let after = disk.stats();
    // Exclude the final materialising read from the sort cost? The paper's model
    // charges every pass a full read+write, and the final read here corresponds to
    // handing the sorted data to the index builder, so we count reads up to (and
    // including) the last merge pass only.
    stats.pages_read = after.reads - before.reads - runs[0].pages.len() as u64;
    stats.pages_written = after.writes - before.writes;
    (sorted, stats)
}

/// K-way merge of sorted runs using a min-heap keyed by the sort key.
fn merge_runs(disk: &VirtualDisk, runs: &[Run]) -> Vec<TraceRecord> {
    type Key = (u64, u64, u32, u64);
    fn key(r: &TraceRecord) -> Key {
        (r.entity, r.start, r.unit, r.end)
    }

    let sources: Vec<Vec<TraceRecord>> = runs.iter().map(|r| read_run(disk, r)).collect();
    let mut cursors = vec![0usize; sources.len()];
    let mut heap: BinaryHeap<Reverse<(Key, usize)>> = BinaryHeap::new();
    for (i, src) in sources.iter().enumerate() {
        if let Some(first) = src.first() {
            heap.push(Reverse((key(first), i)));
        }
    }
    let total: usize = sources.iter().map(Vec::len).sum();
    let mut out = Vec::with_capacity(total);
    while let Some(Reverse((_, src_idx))) = heap.pop() {
        let cursor = cursors[src_idx];
        out.push(sources[src_idx][cursor]);
        cursors[src_idx] += 1;
        if let Some(next) = sources[src_idx].get(cursors[src_idx]) {
            heap.push(Reverse((key(next), src_idx)));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::{rngs::StdRng, Rng, SeedableRng};

    fn random_records(n: usize, seed: u64) -> Vec<TraceRecord> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| {
                let start = rng.gen_range(0..10_000u64);
                TraceRecord::new(
                    rng.gen_range(0..500u64),
                    rng.gen_range(0..100u32),
                    start,
                    start + rng.gen_range(0..100u64),
                )
            })
            .collect()
    }

    fn is_sorted(records: &[TraceRecord]) -> bool {
        records.windows(2).all(|w| {
            (w[0].entity, w[0].start, w[0].unit, w[0].end)
                <= (w[1].entity, w[1].start, w[1].unit, w[1].end)
        })
    }

    #[test]
    fn sorts_small_input_in_one_run() {
        let disk = VirtualDisk::new();
        let records = random_records(50, 1);
        let (sorted, stats) = external_sort(&disk, records.clone(), 4);
        assert_eq!(sorted.len(), records.len());
        assert!(is_sorted(&sorted));
        assert_eq!(stats.initial_runs, 1);
        assert_eq!(stats.passes, 1);
    }

    #[test]
    fn sorts_multi_run_input() {
        let disk = VirtualDisk::new();
        // With 3 buffer pages, each run is 3 pages; make enough records for ~8 runs.
        let n = RECORDS_PER_PAGE * 24;
        let records = random_records(n, 2);
        let (sorted, stats) = external_sort(&disk, records.clone(), 3);
        assert_eq!(sorted.len(), n);
        assert!(is_sorted(&sorted));
        assert!(stats.initial_runs >= 8);
        assert!(stats.passes >= 2, "multiple merge passes expected");
    }

    #[test]
    fn empty_input_is_a_noop() {
        let disk = VirtualDisk::new();
        let (sorted, stats) = external_sort(&disk, Vec::new(), 3);
        assert!(sorted.is_empty());
        assert_eq!(stats.total_io(), 0);
    }

    #[test]
    fn io_grows_with_fewer_buffers() {
        // Fewer buffer pages → more passes → more I/O, as in the Section 4.3 model.
        let n = RECORDS_PER_PAGE * 64;
        let records = random_records(n, 3);
        let io_small = {
            let disk = VirtualDisk::new();
            external_sort(&disk, records.clone(), 3).1.total_io()
        };
        let io_large = {
            let disk = VirtualDisk::new();
            external_sort(&disk, records.clone(), 16).1.total_io()
        };
        assert!(
            io_small > io_large,
            "3 buffers should cost more I/O than 16 ({io_small} vs {io_large})"
        );
    }

    #[test]
    fn measured_io_is_close_to_the_paper_formula() {
        let n = RECORDS_PER_PAGE * 32;
        let records = random_records(n, 4);
        let disk = VirtualDisk::new();
        let (_, stats) = external_sort(&disk, records, 4);
        let predicted = predicted_sort_io(stats.input_pages, 4);
        let measured = stats.total_io();
        // The formula assumes every pass touches exactly N pages; run boundaries
        // can add a page per run, so allow 25% slack.
        let ratio = measured as f64 / predicted as f64;
        assert!((0.6..=1.35).contains(&ratio), "measured {measured} vs predicted {predicted}");
    }

    #[test]
    fn predicted_formula_basics() {
        assert_eq!(predicted_sort_io(0, 4), 0);
        // N <= B: single pass.
        assert_eq!(predicted_sort_io(4, 4), 8);
        // More pages need more passes.
        assert!(predicted_sort_io(1000, 4) > predicted_sort_io(100, 4));
        assert!(predicted_sort_io(1000, 4) > predicted_sort_io(1000, 64));
    }

    #[test]
    #[should_panic(expected = "at least 3 buffer pages")]
    fn too_few_buffers_panics() {
        let disk = VirtualDisk::new();
        let _ = external_sort(&disk, random_records(10, 5), 2);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn sort_is_a_permutation_and_sorted(n in 0usize..2000, seed in 0u64..100, bufs in 3usize..8) {
            let disk = VirtualDisk::new();
            let records = random_records(n, seed);
            let (sorted, _) = external_sort(&disk, records.clone(), bufs);
            prop_assert!(is_sorted(&sorted));
            let mut expect = records;
            expect.sort_unstable_by_key(|r| (r.entity, r.start, r.unit, r.end));
            prop_assert_eq!(sorted, expect);
        }
    }
}
