//! A deterministic in-process "virtual disk" with I/O accounting.
//!
//! The paper's experiments run against an EBS volume; reproducing the *relative*
//! I/O behaviour (how many pages are read and written, how often the buffer pool
//! misses) does not require a physical disk.  The virtual disk stores frozen
//! pages in memory and counts every read and write, so experiments are exact and
//! repeatable.  A configurable per-access latency (in simulated microseconds) lets
//! the Figure 7.6 harness convert page misses into a simulated elapsed time.

use crate::page::{Page, PAGE_SIZE};
use bytes::Bytes;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Identifier of a page on the virtual disk.
pub type PageId = u64;

/// Counters describing the I/O performed against a [`VirtualDisk`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DiskStats {
    /// Number of page reads.
    pub reads: u64,
    /// Number of page writes.
    pub writes: u64,
}

impl DiskStats {
    /// Total number of page transfers.
    pub fn total(&self) -> u64 {
        self.reads + self.writes
    }
}

/// An in-memory page store with read/write accounting.
#[derive(Debug, Default)]
pub struct VirtualDisk {
    pages: Mutex<Vec<Bytes>>,
    reads: AtomicU64,
    writes: AtomicU64,
}

impl VirtualDisk {
    /// Creates an empty disk.
    pub fn new() -> Self {
        VirtualDisk::default()
    }

    /// Number of pages currently stored.
    pub fn num_pages(&self) -> usize {
        self.pages.lock().len()
    }

    /// Total stored size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.num_pages() * PAGE_SIZE
    }

    /// Writes a page, returning its id.
    pub fn write_page(&self, page: &Page) -> PageId {
        let bytes = page.to_bytes();
        let mut pages = self.pages.lock();
        pages.push(bytes);
        self.writes.fetch_add(1, Ordering::Relaxed);
        (pages.len() - 1) as PageId
    }

    /// Overwrites an existing page.
    ///
    /// # Panics
    /// Panics when the page id does not exist.
    pub fn overwrite_page(&self, id: PageId, page: &Page) {
        let mut pages = self.pages.lock();
        let slot = pages.get_mut(id as usize).expect("page id out of range");
        *slot = page.to_bytes();
        self.writes.fetch_add(1, Ordering::Relaxed);
    }

    /// Reads a page by id.
    ///
    /// # Panics
    /// Panics when the page id does not exist.
    pub fn read_page(&self, id: PageId) -> Page {
        let bytes = {
            let pages = self.pages.lock();
            pages.get(id as usize).expect("page id out of range").clone()
        };
        self.reads.fetch_add(1, Ordering::Relaxed);
        Page::from_bytes(&bytes)
    }

    /// Current I/O counters.
    pub fn stats(&self) -> DiskStats {
        DiskStats {
            reads: self.reads.load(Ordering::Relaxed),
            writes: self.writes.load(Ordering::Relaxed),
        }
    }

    /// Resets the I/O counters (the stored pages are kept).
    pub fn reset_stats(&self) {
        self.reads.store(0, Ordering::Relaxed);
        self.writes.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::TraceRecord;

    fn page_with(n: u64) -> Page {
        (0..n).map(|i| TraceRecord::new(i, 0, 0, 1)).collect()
    }

    #[test]
    fn write_then_read_round_trips() {
        let disk = VirtualDisk::new();
        let id = disk.write_page(&page_with(10));
        let back = disk.read_page(id);
        assert_eq!(back.len(), 10);
        assert_eq!(disk.stats(), DiskStats { reads: 1, writes: 1 });
    }

    #[test]
    fn page_ids_are_sequential() {
        let disk = VirtualDisk::new();
        let a = disk.write_page(&page_with(1));
        let b = disk.write_page(&page_with(2));
        assert_eq!(a, 0);
        assert_eq!(b, 1);
        assert_eq!(disk.num_pages(), 2);
        assert_eq!(disk.size_bytes(), 2 * PAGE_SIZE);
    }

    #[test]
    fn overwrite_replaces_contents() {
        let disk = VirtualDisk::new();
        let id = disk.write_page(&page_with(1));
        disk.overwrite_page(id, &page_with(5));
        assert_eq!(disk.read_page(id).len(), 5);
        assert_eq!(disk.stats().writes, 2);
    }

    #[test]
    fn reset_clears_counters_but_not_pages() {
        let disk = VirtualDisk::new();
        disk.write_page(&page_with(1));
        disk.reset_stats();
        assert_eq!(disk.stats().total(), 0);
        assert_eq!(disk.num_pages(), 1);
    }

    #[test]
    #[should_panic(expected = "page id out of range")]
    fn reading_missing_page_panics() {
        let disk = VirtualDisk::new();
        let _ = disk.read_page(3);
    }
}
