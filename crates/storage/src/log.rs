//! An LSN'd, checksummed, fsync'd append-only write-ahead log.
//!
//! The segment files of [`crate::segment`] give every *checkpoint* artefact
//! crash-atomicity: a save either renames completely into place or leaves the
//! old file untouched.  What they cannot give is an **O(batch) commit**: the
//! whole artefact is rewritten per save.  This module adds the missing piece
//! — a [`LogManager`] that appends each ingest batch to an on-disk log and
//! fsyncs it *before* the in-memory structure applies the batch, so a crash
//! after the fsync can replay the batch instead of losing it.
//!
//! ## On-disk layout
//!
//! A log is a directory of numbered segment files, `wal-00000000.log`,
//! `wal-00000001.log`, … Each file is:
//!
//! ```text
//! +--------------+------------------+---------------+-------------------+
//! | magic "MSWL" | version (u16 le) | flags (u16 le)| start_lsn (u64 le)|  16-byte header
//! +--------------+------------------+---------------+-------------------+
//! | lsn (u64 le) | len (u32 le)     | crc (u32 le)  | payload (len B)   |  record 0
//! +--------------+------------------+---------------+-------------------+
//! | ...                                                                 |  record 1..n
//! +---------------------------------------------------------------------+
//! ```
//!
//! Records carry strictly contiguous LSNs starting at the segment header's
//! `start_lsn`; across segments, a file's `start_lsn` must be exactly one
//! past the previous file's last record.  `crc` is a CRC-32 (IEEE) over
//! `lsn || len || payload`, so a bit flip anywhere in a record — including
//! its own header — is detected.
//!
//! ## Commit and recovery contract
//!
//! * [`LogManager::append`] writes one record and (by default) fsyncs the
//!   file before returning.  **The returned LSN is durable**: a crash at any
//!   later instant preserves it.
//! * [`LogManager::open`] replays the log with *prefix recovery*: records
//!   are returned in LSN order up to the first invalid byte — a torn tail
//!   from a crash mid-append and deliberate corruption are indistinguishable,
//!   and both simply end the log.  The torn tail is physically truncated and
//!   any later segment files are deleted, so the next append extends a
//!   fully-valid log.
//! * [`LogManager::truncate_through`] drops whole segments whose records are
//!   all ≤ the checkpoint LSN — called after a checkpoint has durably
//!   renamed into place, never before.
//!
//! The log knows nothing about what the payload bytes mean; `minsig`'s
//! durable index layers batch framing and a cross-shard commit protocol on
//! top (see `minsig::durable`).

use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};

use crate::segment::{crc32, Result, SegmentError, MAX_SEGMENT_LEN};

/// Magic bytes opening every WAL segment file.
pub const LOG_MAGIC: [u8; 4] = *b"MSWL";

/// Newest WAL segment format version this build reads and writes.
pub const LOG_VERSION: u16 = 1;

/// Size of the fixed per-file header (magic, version, flags, start LSN).
const FILE_HEADER_LEN: u64 = 16;

/// Size of the fixed per-record header (LSN, length, CRC).
const RECORD_HEADER_LEN: u64 = 16;

/// Tuning knobs of a [`LogManager`].
#[derive(Debug, Clone, Copy)]
pub struct LogConfig {
    /// Rotate to a new segment file once the active one reaches this many
    /// bytes (the record that crosses the line still goes to the old file's
    /// successor, so segments may exceed this by one header).
    pub segment_bytes: u64,
    /// Whether `append` fsyncs before returning.  Disabling this voids the
    /// durability contract and exists only for tests and benchmarks that
    /// measure the in-memory cost of the log path.
    pub fsync: bool,
}

impl Default for LogConfig {
    fn default() -> Self {
        LogConfig { segment_bytes: 4 << 20, fsync: true }
    }
}

/// One recovered log record: its LSN and the payload bytes exactly as given
/// to [`LogManager::append`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogRecord {
    /// Log sequence number — contiguous, starting at 1 (or one past the
    /// `base_lsn` the log was opened with).
    pub lsn: u64,
    /// The appended bytes.
    pub payload: Vec<u8>,
}

/// One live segment file of the log.
#[derive(Debug, Clone)]
struct Segment {
    /// Sequence number embedded in the file name.
    seq: u64,
    /// LSN the file's first record carries (== next LSN if still empty).
    start_lsn: u64,
    /// Last record's LSN, or `None` while the file holds only a header.
    last_lsn: Option<u64>,
}

/// An append-only write-ahead log over a directory of segment files.
///
/// See the [module docs](self) for the format and the commit contract.
#[derive(Debug)]
pub struct LogManager {
    dir: PathBuf,
    config: LogConfig,
    /// Active (last) segment's file handle, positioned at its end.
    file: File,
    /// Bytes currently in the active segment.
    active_bytes: u64,
    /// Live segments, ascending by `seq`; never empty.
    segments: Vec<Segment>,
    /// LSN the next append will receive.
    next_lsn: u64,
}

impl LogManager {
    /// Opens (creating if needed) the log in `dir` and replays it.
    ///
    /// `base_lsn` is the LSN of the caller's newest checkpoint (0 when no
    /// checkpoint exists): the next append is guaranteed an LSN strictly
    /// greater than both `base_lsn` and every recovered record.  Returns the
    /// manager plus all valid records, ascending by LSN — the caller filters
    /// out those already covered by its checkpoint.  Any torn tail is
    /// physically truncated before returning (prefix recovery).
    pub fn open(
        dir: &Path,
        base_lsn: u64,
        config: LogConfig,
    ) -> Result<(LogManager, Vec<LogRecord>)> {
        fs::create_dir_all(dir)?;
        let mut seqs = segment_seqs(dir)?;
        seqs.sort_unstable();

        let mut records = Vec::new();
        let mut segments: Vec<Segment> = Vec::new();
        let mut expected_lsn: Option<u64> = None;
        for (i, &seq) in seqs.iter().enumerate() {
            let path = segment_path(dir, seq);
            match recover_segment(&path, expected_lsn)? {
                SegmentScan::Valid { start_lsn, recs } => {
                    let last_lsn = recs.last().map(|r| r.lsn);
                    expected_lsn = Some(last_lsn.map_or(start_lsn, |l| l + 1));
                    records.extend(recs);
                    segments.push(Segment { seq, start_lsn, last_lsn });
                }
                SegmentScan::Torn => {
                    // A crash mid-creation (or mid-append wiping the whole
                    // file): this segment and everything after it are the
                    // un-committed tail.  Delete them.
                    for &later in &seqs[i..] {
                        fs::remove_file(segment_path(dir, later))?;
                    }
                    sync_dir(dir)?;
                    break;
                }
            }
        }

        let next_lsn = expected_lsn.unwrap_or(1).max(base_lsn + 1);
        if expected_lsn.is_some_and(|e| e != next_lsn) {
            // The caller's checkpoint is newer than everything on disk, so
            // every retained record is already covered; retire the stale
            // chain so appends restart cleanly at `next_lsn`.
            for seg in &segments {
                fs::remove_file(segment_path(dir, seg.seq))?;
            }
            sync_dir(dir)?;
            segments.clear();
        }
        let (file, active_bytes) = match segments.last() {
            Some(active) => {
                let path = segment_path(dir, active.seq);
                let file = OpenOptions::new().append(true).open(&path)?;
                let len = file.metadata()?.len();
                (file, len)
            }
            None => {
                let seq = seqs.last().map_or(0, |s| s + 1);
                let (file, len) = create_segment(dir, seq, next_lsn)?;
                segments.push(Segment { seq, start_lsn: next_lsn, last_lsn: None });
                (file, len)
            }
        };
        let manager =
            LogManager { dir: dir.to_path_buf(), config, file, active_bytes, segments, next_lsn };
        Ok((manager, records))
    }

    /// Appends one record, fsyncs (per [`LogConfig::fsync`]), and returns its
    /// LSN.  After this returns, the record survives any crash.
    pub fn append(&mut self, payload: &[u8]) -> Result<u64> {
        if payload.len() as u64 > MAX_SEGMENT_LEN {
            return Err(SegmentError::Malformed(format!(
                "log payload of {} bytes exceeds the {MAX_SEGMENT_LEN}-byte cap",
                payload.len()
            )));
        }
        if self.active_bytes >= self.config.segment_bytes
            && self.segments.last().is_some_and(|s| s.last_lsn.is_some())
        {
            self.rotate()?;
        }
        let lsn = self.next_lsn;
        let mut buf = Vec::with_capacity(RECORD_HEADER_LEN as usize + payload.len());
        buf.extend_from_slice(&lsn.to_le_bytes());
        buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        let mut crc_input = Vec::with_capacity(12 + payload.len());
        crc_input.extend_from_slice(&lsn.to_le_bytes());
        crc_input.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        crc_input.extend_from_slice(payload);
        buf.extend_from_slice(&crc32(&crc_input).to_le_bytes());
        buf.extend_from_slice(payload);
        self.file.write_all(&buf)?;
        if self.config.fsync {
            self.file.sync_data()?;
        }
        self.active_bytes += buf.len() as u64;
        self.next_lsn += 1;
        self.segments.last_mut().expect("log always has an active segment").last_lsn = Some(lsn);
        Ok(lsn)
    }

    /// Drops every whole segment whose records are all ≤ `lsn` — called
    /// after the checkpoint covering `lsn` has durably renamed into place.
    /// Segment granularity means some records ≤ `lsn` may survive in a
    /// segment that also holds newer ones; recovery filters them out by LSN.
    pub fn truncate_through(&mut self, lsn: u64) -> Result<()> {
        let retained_from = self
            .segments
            .iter()
            .position(|s| s.last_lsn.map_or(s.start_lsn > lsn, |last| last > lsn))
            .unwrap_or(self.segments.len());
        if retained_from == 0 {
            return Ok(());
        }
        for seg in &self.segments[..retained_from] {
            fs::remove_file(segment_path(&self.dir, seg.seq))?;
        }
        self.segments.drain(..retained_from);
        if self.segments.is_empty() {
            let seq = self.next_seq();
            let (file, len) = create_segment(&self.dir, seq, self.next_lsn)?;
            self.segments.push(Segment { seq, start_lsn: self.next_lsn, last_lsn: None });
            self.file = file;
            self.active_bytes = len;
        } else {
            sync_dir(&self.dir)?;
        }
        Ok(())
    }

    /// LSN the next [`append`](Self::append) will return.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// Lowest LSN still retained on disk, or `None` if the log holds no
    /// records (then the log's coverage effectively begins at
    /// [`next_lsn`](Self::next_lsn)).
    pub fn first_lsn(&self) -> Option<u64> {
        self.segments.iter().find(|s| s.last_lsn.is_some()).map(|s| s.start_lsn)
    }

    /// Highest LSN written, or `None` if the log holds no records.
    pub fn last_lsn(&self) -> Option<u64> {
        self.segments.iter().rev().find_map(|s| s.last_lsn)
    }

    /// Number of live segment files (≥ 1; useful for rotation tests).
    pub fn segment_files(&self) -> usize {
        self.segments.len()
    }

    /// Total bytes across the live segment files.
    pub fn disk_bytes(&self) -> u64 {
        self.segments
            .iter()
            .map(|s| fs::metadata(segment_path(&self.dir, s.seq)).map_or(0, |m| m.len()))
            .sum()
    }

    fn next_seq(&self) -> u64 {
        self.segments.last().map_or(0, |s| s.seq + 1)
    }

    fn rotate(&mut self) -> Result<()> {
        self.file.sync_data()?;
        let seq = self.next_seq();
        let (file, len) = create_segment(&self.dir, seq, self.next_lsn)?;
        self.segments.push(Segment { seq, start_lsn: self.next_lsn, last_lsn: None });
        self.file = file;
        self.active_bytes = len;
        Ok(())
    }
}

/// Result of scanning one segment file during recovery.
enum SegmentScan {
    /// The header parsed and `recs` is the file's valid record prefix (any
    /// torn tail has been truncated away on disk).
    Valid { start_lsn: u64, recs: Vec<LogRecord> },
    /// The file has no complete valid header (crash during creation) or its
    /// header disagrees with the log's LSN chain: it and every later segment
    /// are an uncommitted tail.
    Torn,
}

/// Scans a segment file, truncating any torn record tail in place.
fn recover_segment(path: &Path, expected_lsn: Option<u64>) -> Result<SegmentScan> {
    let bytes = fs::read(path)?;
    if bytes.len() < FILE_HEADER_LEN as usize {
        return Ok(SegmentScan::Torn);
    }
    let magic: [u8; 4] = bytes[0..4].try_into().unwrap();
    if magic != LOG_MAGIC {
        return Err(SegmentError::BadMagic { expected: LOG_MAGIC, found: magic });
    }
    let version = u16::from_le_bytes(bytes[4..6].try_into().unwrap());
    if version == 0 || version > LOG_VERSION {
        return Err(SegmentError::UnsupportedVersion { found: version, supported: LOG_VERSION });
    }
    let start_lsn = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    if start_lsn == 0 || expected_lsn.is_some_and(|e| e != start_lsn) {
        // A segment that does not continue the chain (stale file from an
        // interrupted truncation, or a zeroed header) ends the valid prefix.
        return Ok(SegmentScan::Torn);
    }

    let mut recs = Vec::new();
    let mut offset = FILE_HEADER_LEN as usize;
    let mut lsn = start_lsn;
    while let Some(header) = bytes.get(offset..offset + RECORD_HEADER_LEN as usize) {
        let rec_lsn = u64::from_le_bytes(header[0..8].try_into().unwrap());
        let len = u32::from_le_bytes(header[8..12].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(header[12..16].try_into().unwrap());
        if rec_lsn != lsn || len as u64 > MAX_SEGMENT_LEN {
            break;
        }
        let payload_at = offset + RECORD_HEADER_LEN as usize;
        let Some(payload) = bytes.get(payload_at..payload_at + len) else { break };
        let mut crc_input = Vec::with_capacity(12 + len);
        crc_input.extend_from_slice(&header[0..12]);
        crc_input.extend_from_slice(payload);
        if crc32(&crc_input) != crc {
            break;
        }
        recs.push(LogRecord { lsn: rec_lsn, payload: payload.to_vec() });
        offset = payload_at + len;
        lsn += 1;
    }
    if offset < bytes.len() {
        // Torn or corrupt tail: physically truncate so future appends extend
        // a fully-valid file.
        let file = OpenOptions::new().write(true).open(path)?;
        file.set_len(offset as u64)?;
        file.sync_data()?;
    }
    Ok(SegmentScan::Valid { start_lsn, recs })
}

fn segment_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("wal-{seq:08}.log"))
}

/// Sequence numbers of the `wal-*.log` files in `dir`, unordered.
fn segment_seqs(dir: &Path) -> Result<Vec<u64>> {
    let mut seqs = Vec::new();
    for entry in fs::read_dir(dir)? {
        let name = entry?.file_name();
        let Some(name) = name.to_str() else { continue };
        if let Some(stem) = name.strip_prefix("wal-").and_then(|s| s.strip_suffix(".log")) {
            if let Ok(seq) = stem.parse::<u64>() {
                seqs.push(seq);
            }
        }
    }
    Ok(seqs)
}

/// Creates a fresh segment file with a durably-written header.
fn create_segment(dir: &Path, seq: u64, start_lsn: u64) -> Result<(File, u64)> {
    let path = segment_path(dir, seq);
    let mut file = OpenOptions::new().create(true).truncate(true).write(true).open(&path)?;
    let mut header = Vec::with_capacity(FILE_HEADER_LEN as usize);
    header.extend_from_slice(&LOG_MAGIC);
    header.extend_from_slice(&LOG_VERSION.to_le_bytes());
    header.extend_from_slice(&0u16.to_le_bytes()); // flags
    header.extend_from_slice(&start_lsn.to_le_bytes());
    file.write_all(&header)?;
    file.sync_data()?;
    sync_dir(dir)?;
    Ok((file, FILE_HEADER_LEN))
}

/// Fsyncs a directory so renames/creates/deletes inside it survive a crash.
fn sync_dir(dir: &Path) -> Result<()> {
    File::open(dir)?.sync_all()?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let dir = std::env::temp_dir().join(format!(
            "waltest-{tag}-{}-{}",
            std::process::id(),
            COUNTER.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn no_fsync() -> LogConfig {
        LogConfig { fsync: false, ..LogConfig::default() }
    }

    #[test]
    fn append_and_reopen_round_trip() {
        let dir = temp_dir("roundtrip");
        let (mut log, recs) = LogManager::open(&dir, 0, no_fsync()).unwrap();
        assert!(recs.is_empty());
        assert_eq!(log.next_lsn(), 1);
        assert_eq!(log.append(b"alpha").unwrap(), 1);
        assert_eq!(log.append(b"").unwrap(), 2);
        assert_eq!(log.append(b"gamma-longer-payload").unwrap(), 3);
        assert_eq!(log.first_lsn(), Some(1));
        assert_eq!(log.last_lsn(), Some(3));
        drop(log);

        let (log, recs) = LogManager::open(&dir, 0, no_fsync()).unwrap();
        assert_eq!(
            recs,
            vec![
                LogRecord { lsn: 1, payload: b"alpha".to_vec() },
                LogRecord { lsn: 2, payload: Vec::new() },
                LogRecord { lsn: 3, payload: b"gamma-longer-payload".to_vec() },
            ]
        );
        assert_eq!(log.next_lsn(), 4);
    }

    #[test]
    fn reopen_continues_the_lsn_chain() {
        let dir = temp_dir("continue");
        let (mut log, _) = LogManager::open(&dir, 0, no_fsync()).unwrap();
        log.append(b"one").unwrap();
        drop(log);
        let (mut log, recs) = LogManager::open(&dir, 0, no_fsync()).unwrap();
        assert_eq!(recs.len(), 1);
        assert_eq!(log.append(b"two").unwrap(), 2);
        drop(log);
        let (_, recs) = LogManager::open(&dir, 0, no_fsync()).unwrap();
        assert_eq!(recs.iter().map(|r| r.lsn).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn base_lsn_floors_the_next_append() {
        let dir = temp_dir("base");
        let (log, recs) = LogManager::open(&dir, 41, no_fsync()).unwrap();
        assert!(recs.is_empty());
        assert_eq!(log.next_lsn(), 42);
        drop(log);
        // Reopening with the same base keeps the floor even though the log
        // is empty on disk.
        let (mut log, _) = LogManager::open(&dir, 41, no_fsync()).unwrap();
        assert_eq!(log.append(b"x").unwrap(), 42);
    }

    #[test]
    fn rotation_splits_segments_and_recovers_across_them() {
        let dir = temp_dir("rotate");
        let config = LogConfig { segment_bytes: 64, fsync: false };
        let (mut log, _) = LogManager::open(&dir, 0, config).unwrap();
        for i in 0..10u64 {
            log.append(&i.to_le_bytes()).unwrap();
        }
        assert!(log.segment_files() > 1, "64-byte segments must rotate");
        drop(log);
        let (log, recs) = LogManager::open(&dir, 0, config).unwrap();
        assert_eq!(recs.len(), 10);
        assert_eq!(recs.iter().map(|r| r.lsn).collect::<Vec<_>>(), (1..=10).collect::<Vec<_>>());
        assert_eq!(log.next_lsn(), 11);
    }

    #[test]
    fn truncate_through_drops_covered_segments() {
        let dir = temp_dir("truncate");
        let config = LogConfig { segment_bytes: 64, fsync: false };
        let (mut log, _) = LogManager::open(&dir, 0, config).unwrap();
        for i in 0..10u64 {
            log.append(&i.to_le_bytes()).unwrap();
        }
        let last = log.last_lsn().unwrap();
        log.truncate_through(last).unwrap();
        assert_eq!(log.first_lsn(), None);
        assert_eq!(log.next_lsn(), last + 1);
        assert_eq!(log.segment_files(), 1);
        // New appends continue the chain and survive reopen.
        assert_eq!(log.append(b"post").unwrap(), last + 1);
        drop(log);
        let (log, recs) = LogManager::open(&dir, last, config).unwrap();
        assert_eq!(recs, vec![LogRecord { lsn: last + 1, payload: b"post".to_vec() }]);
        assert_eq!(log.next_lsn(), last + 2);
    }

    #[test]
    fn partial_truncation_keeps_mixed_segments() {
        let dir = temp_dir("partial");
        let config = LogConfig { segment_bytes: 64, fsync: false };
        let (mut log, _) = LogManager::open(&dir, 0, config).unwrap();
        for i in 0..10u64 {
            log.append(&i.to_le_bytes()).unwrap();
        }
        let files_before = log.segment_files();
        log.truncate_through(2).unwrap();
        assert!(log.segment_files() <= files_before);
        // Every record > 2 is still recoverable.
        drop(log);
        let (_, recs) = LogManager::open(&dir, 0, config).unwrap();
        let lsns: Vec<u64> = recs.iter().map(|r| r.lsn).filter(|&l| l > 2).collect();
        assert_eq!(lsns, (3..=10).collect::<Vec<_>>());
    }

    /// The acceptance-criteria property at the storage layer: a log cut at
    /// *every* byte prefix recovers exactly the records whose final fsync'd
    /// byte made the cut, never a corrupt or partial record.
    #[test]
    fn every_byte_prefix_recovers_a_record_prefix() {
        let dir = temp_dir("prefix-src");
        let (mut log, _) = LogManager::open(&dir, 0, no_fsync()).unwrap();
        let payloads: Vec<Vec<u8>> = (0..4u8).map(|i| vec![i; 3 + i as usize * 5]).collect();
        let mut ends = Vec::new(); // byte offset at which each record becomes whole
        for p in &payloads {
            log.append(p).unwrap();
            ends.push(log.disk_bytes());
        }
        let path = segment_path(&dir, 0);
        let full = fs::read(&path).unwrap();
        drop(log);

        for cut in 0..=full.len() {
            let dir_cut = temp_dir("prefix-cut");
            fs::write(segment_path(&dir_cut, 0), &full[..cut]).unwrap();
            let (log, recs) = LogManager::open(&dir_cut, 0, no_fsync()).unwrap();
            let expect = ends.iter().filter(|&&e| e <= cut as u64).count();
            assert_eq!(recs.len(), expect, "cut at byte {cut} of {}", full.len());
            for (i, rec) in recs.iter().enumerate() {
                assert_eq!(rec.lsn, i as u64 + 1);
                assert_eq!(rec.payload, payloads[i], "payload {i} corrupted at cut {cut}");
            }
            // The torn tail was physically removed: appends go through and a
            // second recovery agrees with the first.
            assert_eq!(log.next_lsn(), expect as u64 + 1);
            drop(log);
            let (_, again) = LogManager::open(&dir_cut, 0, no_fsync()).unwrap();
            assert_eq!(again, recs);
            fs::remove_dir_all(&dir_cut).unwrap();
        }
    }

    /// Bit flips anywhere in a record (header or payload) end the valid
    /// prefix at that record, never corrupt a recovered payload.
    #[test]
    fn every_single_bit_flip_is_detected() {
        let dir = temp_dir("flip-src");
        let (mut log, _) = LogManager::open(&dir, 0, no_fsync()).unwrap();
        log.append(b"first-record").unwrap();
        log.append(b"second-record").unwrap();
        let path = segment_path(&dir, 0);
        let full = fs::read(&path).unwrap();
        drop(log);

        for byte in FILE_HEADER_LEN as usize..full.len() {
            for bit in 0..8 {
                let mut corrupt = full.clone();
                corrupt[byte] ^= 1 << bit;
                let dir_cut = temp_dir("flip");
                fs::write(segment_path(&dir_cut, 0), &corrupt).unwrap();
                let (_, recs) = LogManager::open(&dir_cut, 0, no_fsync()).unwrap();
                // The flip lands in record 1 or record 2; recovery must
                // return an exact prefix of the true records.
                assert!(recs.len() < 2, "flip at byte {byte} bit {bit} went undetected");
                if let Some(rec) = recs.first() {
                    assert_eq!(rec.payload, b"first-record");
                }
                fs::remove_dir_all(&dir_cut).unwrap();
            }
        }
    }

    #[test]
    fn lost_whole_segment_ends_the_prefix() {
        let dir = temp_dir("lostseg");
        let config = LogConfig { segment_bytes: 32, fsync: false };
        let (mut log, _) = LogManager::open(&dir, 0, config).unwrap();
        for i in 0..6u64 {
            log.append(&[i as u8; 8]).unwrap();
        }
        assert!(log.segment_files() >= 3);
        drop(log);
        // Remove a middle segment: recovery keeps only the records before
        // the gap and deletes the now-unreachable later files.
        fs::remove_file(segment_path(&dir, 1)).unwrap();
        let (log, recs) = LogManager::open(&dir, 0, config).unwrap();
        let recovered: Vec<u64> = recs.iter().map(|r| r.lsn).collect();
        assert!(!recovered.is_empty());
        assert_eq!(recovered, (1..=recovered.len() as u64).collect::<Vec<_>>());
        drop(log);
        let (_, again) = LogManager::open(&dir, 0, config).unwrap();
        assert_eq!(again, recs);
    }

    #[test]
    fn oversize_payload_is_rejected() {
        // Construct the error path without allocating a >1 GiB buffer: the
        // cap check reads only the length.
        let dir = temp_dir("oversize");
        let (mut log, _) = LogManager::open(&dir, 0, no_fsync()).unwrap();
        // MAX_SEGMENT_LEN itself is allowed; we only sanity-check the guard
        // logic via a small payload and the documented constant.
        assert!(log.append(&[0u8; 64]).is_ok());
        const { assert!(MAX_SEGMENT_LEN >= (4 << 20)) };
    }
}
