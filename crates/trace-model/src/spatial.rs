//! The spatial hierarchy (*sp-index*) of Section 3.1.
//!
//! Locations exhibit a hierarchical structure known a priori (city → district →
//! street → building).  The sp-index organises spatial units from coarsest
//! (level 1) to finest (level `m`, the *base spatial units* — the atomic locations
//! at which entities can be present).  Following Example 4.1.1 of the paper, level
//! 1 may contain several units; conceptually there is a virtual root above level 1.
//!
//! The index is an arena: units are identified by dense [`SpatialUnitId`]s, parents
//! and children are stored per unit, and every internal unit knows the contiguous
//! range of base-unit ordinals below it.  The contiguous range makes projecting a
//! base unit to any ancestor level an O(1) lookup, which the signature machinery
//! and the association measures rely on heavily.

use crate::error::{ModelError, Result};
use serde::{Deserialize, Serialize};

/// Identifier of a spatial unit within one sp-index (dense, assigned by the builder).
pub type SpatialUnitId = u32;

/// A level in the sp-index: `1` is the coarsest, `m` the base level.
pub type Level = u8;

/// Metadata stored for every spatial unit.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct UnitMeta {
    level: Level,
    parent: Option<SpatialUnitId>,
    children: Vec<SpatialUnitId>,
    /// Half-open range of base-unit ordinals covered by this unit.
    base_range: (u32, u32),
    /// Ordinal among base units (only meaningful when `level == height`).
    base_ordinal: u32,
}

/// An immutable spatial hierarchy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpIndex {
    height: Level,
    units: Vec<UnitMeta>,
    /// Units at level 1 (children of the virtual root), in insertion order.
    top_units: Vec<SpatialUnitId>,
    /// Base units ordered by ordinal.
    base_units: Vec<SpatialUnitId>,
    /// `ancestors[unit][l-1]` = ancestor of `unit` at level `l` (only filled for
    /// levels `<=` the unit's own level; the unit itself is its own "ancestor" at
    /// its level).
    ancestors: Vec<Vec<SpatialUnitId>>,
}

impl SpIndex {
    /// Height `m` of the hierarchy (number of levels).
    #[inline]
    pub fn height(&self) -> Level {
        self.height
    }

    /// Total number of spatial units across all levels.
    #[inline]
    pub fn num_units(&self) -> usize {
        self.units.len()
    }

    /// Number of base spatial units (`|L|` in the paper's notation).
    #[inline]
    pub fn num_base_units(&self) -> usize {
        self.base_units.len()
    }

    /// The base spatial units in ordinal order.
    #[inline]
    pub fn base_units(&self) -> &[SpatialUnitId] {
        &self.base_units
    }

    /// Units at level 1 (the coarsest real level).
    #[inline]
    pub fn top_units(&self) -> &[SpatialUnitId] {
        &self.top_units
    }

    /// Returns true when the id refers to an existing unit.
    #[inline]
    pub fn contains(&self, unit: SpatialUnitId) -> bool {
        (unit as usize) < self.units.len()
    }

    fn meta(&self, unit: SpatialUnitId) -> Result<&UnitMeta> {
        self.units.get(unit as usize).ok_or(ModelError::UnknownSpatialUnit(unit))
    }

    /// Level of a unit.
    pub fn level(&self, unit: SpatialUnitId) -> Result<Level> {
        Ok(self.meta(unit)?.level)
    }

    /// `parent(l)` as written in the paper; `None` for level-1 units.
    pub fn parent(&self, unit: SpatialUnitId) -> Result<Option<SpatialUnitId>> {
        Ok(self.meta(unit)?.parent)
    }

    /// Children of a unit (empty for base units).
    pub fn children(&self, unit: SpatialUnitId) -> Result<&[SpatialUnitId]> {
        Ok(&self.meta(unit)?.children)
    }

    /// True when the unit is a base spatial unit (level `m`).
    pub fn is_base(&self, unit: SpatialUnitId) -> Result<bool> {
        Ok(self.meta(unit)?.level == self.height)
    }

    /// Ordinal of a base unit (its index in [`SpIndex::base_units`]).
    pub fn base_ordinal(&self, unit: SpatialUnitId) -> Result<u32> {
        let meta = self.meta(unit)?;
        if meta.level != self.height {
            return Err(ModelError::InvalidHierarchy(format!(
                "unit {unit} at level {} is not a base unit",
                meta.level
            )));
        }
        Ok(meta.base_ordinal)
    }

    /// The base unit with the given ordinal.
    pub fn base_unit_at(&self, ordinal: u32) -> Option<SpatialUnitId> {
        self.base_units.get(ordinal as usize).copied()
    }

    /// Half-open range of base-unit ordinals covered by `unit`.
    pub fn base_range(&self, unit: SpatialUnitId) -> Result<(u32, u32)> {
        Ok(self.meta(unit)?.base_range)
    }

    /// Number of base units under `unit` (`|S_U|` in Section 6.2).
    pub fn base_count(&self, unit: SpatialUnitId) -> Result<u32> {
        let (lo, hi) = self.base_range(unit)?;
        Ok(hi - lo)
    }

    /// The ancestor of `unit` at `level` (which must be `<=` the unit's own level).
    /// The unit itself is returned when `level` equals its own level.
    pub fn ancestor_at_level(&self, unit: SpatialUnitId, level: Level) -> Result<SpatialUnitId> {
        let meta = self.meta(unit)?;
        if level == 0 || level > meta.level {
            return Err(ModelError::InvalidLevel { level, height: self.height });
        }
        Ok(self.ancestors[unit as usize][(level - 1) as usize])
    }

    /// The root-to-unit path of spatial units: `[level-1 ancestor, ..., unit]`.
    pub fn path(&self, unit: SpatialUnitId) -> Result<Vec<SpatialUnitId>> {
        let meta = self.meta(unit)?;
        Ok(self.ancestors[unit as usize][..meta.level as usize].to_vec())
    }

    /// All units at a given level, in id order.
    pub fn units_at_level(&self, level: Level) -> Vec<SpatialUnitId> {
        (0..self.units.len() as u32).filter(|&u| self.units[u as usize].level == level).collect()
    }

    /// Number of units at each level, indexed by `level - 1`.
    pub fn width_per_level(&self) -> Vec<usize> {
        let mut widths = vec![0usize; self.height as usize];
        for meta in &self.units {
            widths[(meta.level - 1) as usize] += 1;
        }
        widths
    }

    /// Builds a uniform hierarchy where each level-`l` unit has exactly
    /// `branching[l-1]` children, for `l` in `1..m`.  `branching.len() + 1` is the
    /// height, and `branching` must be non-empty for a multi-level hierarchy; pass
    /// an empty slice with `top_units > 0` for a flat single-level index.
    ///
    /// This is mostly a convenience for tests and examples.
    pub fn uniform(top_units: usize, branching: &[usize]) -> Result<SpIndex> {
        if top_units == 0 {
            return Err(ModelError::InvalidHierarchy("top_units must be positive".into()));
        }
        let height = (branching.len() + 1) as Level;
        let mut builder = SpIndexBuilder::new(height);
        let mut current: Vec<SpatialUnitId> = Vec::with_capacity(top_units);
        for _ in 0..top_units {
            current.push(builder.add_top_unit()?);
        }
        for (depth, &fanout) in branching.iter().enumerate() {
            if fanout == 0 {
                return Err(ModelError::InvalidHierarchy(format!(
                    "branching factor at depth {depth} must be positive"
                )));
            }
            let mut next = Vec::with_capacity(current.len() * fanout);
            for &parent in &current {
                for _ in 0..fanout {
                    next.push(builder.add_child(parent)?);
                }
            }
            current = next;
        }
        builder.build()
    }
}

/// Incremental builder for an [`SpIndex`].
///
/// Units must be added top-down: level-1 units first (via [`add_top_unit`]), then
/// children of already-added units (via [`add_child`]).  [`build`] validates that
/// every leaf sits exactly at level `m` and computes base ordinals / ancestor
/// tables.
///
/// [`add_top_unit`]: SpIndexBuilder::add_top_unit
/// [`add_child`]: SpIndexBuilder::add_child
/// [`build`]: SpIndexBuilder::build
#[derive(Debug, Clone)]
pub struct SpIndexBuilder {
    height: Level,
    units: Vec<UnitMeta>,
    top_units: Vec<SpatialUnitId>,
}

impl SpIndexBuilder {
    /// Creates a builder for a hierarchy of the given height (`m >= 1`).
    pub fn new(height: Level) -> Self {
        assert!(height >= 1, "sp-index height must be at least 1");
        SpIndexBuilder { height, units: Vec::new(), top_units: Vec::new() }
    }

    /// Height this builder was created with.
    pub fn height(&self) -> Level {
        self.height
    }

    /// Number of units added so far.
    pub fn len(&self) -> usize {
        self.units.len()
    }

    /// True when no units have been added yet.
    pub fn is_empty(&self) -> bool {
        self.units.is_empty()
    }

    /// Adds a level-1 unit (a child of the virtual root) and returns its id.
    pub fn add_top_unit(&mut self) -> Result<SpatialUnitId> {
        let id = self.units.len() as SpatialUnitId;
        self.units.push(UnitMeta {
            level: 1,
            parent: None,
            children: Vec::new(),
            base_range: (0, 0),
            base_ordinal: u32::MAX,
        });
        self.top_units.push(id);
        Ok(id)
    }

    /// Adds a child of an existing unit and returns its id.
    pub fn add_child(&mut self, parent: SpatialUnitId) -> Result<SpatialUnitId> {
        let parent_level =
            self.units.get(parent as usize).ok_or(ModelError::UnknownSpatialUnit(parent))?.level;
        let level = parent_level + 1;
        if level > self.height {
            return Err(ModelError::InvalidLevel { level, height: self.height });
        }
        let id = self.units.len() as SpatialUnitId;
        self.units.push(UnitMeta {
            level,
            parent: Some(parent),
            children: Vec::new(),
            base_range: (0, 0),
            base_ordinal: u32::MAX,
        });
        self.units[parent as usize].children.push(id);
        Ok(id)
    }

    /// Finalises the hierarchy.
    ///
    /// Validation rules:
    /// * at least one level-1 unit exists;
    /// * every unit at a level `< m` has at least one child;
    /// * base units are exactly the units at level `m`.
    pub fn build(self) -> Result<SpIndex> {
        let SpIndexBuilder { height, mut units, top_units } = self;
        if top_units.is_empty() {
            return Err(ModelError::InvalidHierarchy("no level-1 units".into()));
        }
        for (id, meta) in units.iter().enumerate() {
            if meta.level < height && meta.children.is_empty() {
                return Err(ModelError::InvalidHierarchy(format!(
                    "unit {id} at level {} has no children but the hierarchy height is {height}",
                    meta.level
                )));
            }
        }

        // DFS to assign base ordinals and base ranges.
        let mut base_units = Vec::new();
        let mut stack: Vec<(SpatialUnitId, bool)> =
            top_units.iter().rev().map(|&u| (u, false)).collect();
        // Iterative post-order: first visit assigns range start, second visit range end.
        let mut range_start = vec![0u32; units.len()];
        while let Some((unit, expanded)) = stack.pop() {
            if expanded {
                let end = base_units.len() as u32;
                units[unit as usize].base_range = (range_start[unit as usize], end);
                continue;
            }
            range_start[unit as usize] = base_units.len() as u32;
            if units[unit as usize].level == height {
                let ordinal = base_units.len() as u32;
                units[unit as usize].base_ordinal = ordinal;
                base_units.push(unit);
                units[unit as usize].base_range = (ordinal, ordinal + 1);
                continue;
            }
            stack.push((unit, true));
            let children = units[unit as usize].children.clone();
            for &child in children.iter().rev() {
                stack.push((child, false));
            }
        }

        // Ancestor tables.
        let mut ancestors = vec![Vec::new(); units.len()];
        // Units were inserted parent-before-child, so a single forward pass works.
        for id in 0..units.len() {
            let meta = &units[id];
            let mut path = match meta.parent {
                Some(p) => ancestors[p as usize].clone(),
                None => Vec::new(),
            };
            path.push(id as SpatialUnitId);
            debug_assert_eq!(path.len(), meta.level as usize);
            ancestors[id] = path;
        }

        Ok(SpIndex { height, units, top_units, base_units, ancestors })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Builds the Example 4.1.1 hierarchy: m = 2, L5 = {L1, L2}, L6 = {L3, L4}.
    fn example_hierarchy() -> (SpIndex, [SpatialUnitId; 6]) {
        let mut b = SpIndexBuilder::new(2);
        let l5 = b.add_top_unit().unwrap();
        let l6 = b.add_top_unit().unwrap();
        let l1 = b.add_child(l5).unwrap();
        let l2 = b.add_child(l5).unwrap();
        let l3 = b.add_child(l6).unwrap();
        let l4 = b.add_child(l6).unwrap();
        (b.build().unwrap(), [l1, l2, l3, l4, l5, l6])
    }

    #[test]
    fn example_hierarchy_structure() {
        let (sp, [l1, l2, l3, l4, l5, l6]) = example_hierarchy();
        assert_eq!(sp.height(), 2);
        assert_eq!(sp.num_units(), 6);
        assert_eq!(sp.num_base_units(), 4);
        assert_eq!(sp.parent(l1).unwrap(), Some(l5));
        assert_eq!(sp.parent(l2).unwrap(), Some(l5));
        assert_eq!(sp.parent(l3).unwrap(), Some(l6));
        assert_eq!(sp.parent(l4).unwrap(), Some(l6));
        assert_eq!(sp.parent(l5).unwrap(), None);
        assert_eq!(sp.children(l6).unwrap(), &[l3, l4]);
        assert!(sp.is_base(l1).unwrap());
        assert!(!sp.is_base(l5).unwrap());
    }

    #[test]
    fn base_ranges_are_contiguous_and_cover_children() {
        let (sp, [l1, l2, l3, l4, l5, l6]) = example_hierarchy();
        let (lo5, hi5) = sp.base_range(l5).unwrap();
        let (lo6, hi6) = sp.base_range(l6).unwrap();
        assert_eq!(hi5 - lo5, 2);
        assert_eq!(hi6 - lo6, 2);
        // Children ordinals fall inside the parent's range.
        for (parent, children) in [(l5, [l1, l2]), (l6, [l3, l4])] {
            let (lo, hi) = sp.base_range(parent).unwrap();
            for c in children {
                let o = sp.base_ordinal(c).unwrap();
                assert!(o >= lo && o < hi);
            }
        }
        // The two ranges tile the base ordinals.
        let mut all: Vec<u32> = (lo5..hi5).chain(lo6..hi6).collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
    }

    #[test]
    fn ancestor_projection() {
        let (sp, [l1, _l2, l3, _l4, l5, l6]) = example_hierarchy();
        assert_eq!(sp.ancestor_at_level(l1, 1).unwrap(), l5);
        assert_eq!(sp.ancestor_at_level(l3, 1).unwrap(), l6);
        assert_eq!(sp.ancestor_at_level(l1, 2).unwrap(), l1);
        assert_eq!(sp.ancestor_at_level(l5, 1).unwrap(), l5);
        assert!(sp.ancestor_at_level(l5, 2).is_err());
        assert!(sp.ancestor_at_level(l1, 0).is_err());
    }

    #[test]
    fn paths_run_root_to_unit() {
        let (sp, [l1, ..]) = example_hierarchy();
        let path = sp.path(l1).unwrap();
        assert_eq!(path.len(), 2);
        assert_eq!(sp.level(path[0]).unwrap(), 1);
        assert_eq!(path[1], l1);
    }

    #[test]
    fn uniform_builds_expected_widths() {
        let sp = SpIndex::uniform(3, &[4, 5]).unwrap();
        assert_eq!(sp.height(), 3);
        assert_eq!(sp.width_per_level(), vec![3, 12, 60]);
        assert_eq!(sp.num_base_units(), 60);
        // Every base unit projects to a level-1 ancestor.
        for &b in sp.base_units() {
            let a = sp.ancestor_at_level(b, 1).unwrap();
            assert_eq!(sp.level(a).unwrap(), 1);
        }
    }

    #[test]
    fn uniform_rejects_degenerate_configs() {
        assert!(SpIndex::uniform(0, &[2]).is_err());
        assert!(SpIndex::uniform(2, &[0]).is_err());
    }

    #[test]
    fn builder_rejects_leafless_internal_units() {
        let mut b = SpIndexBuilder::new(3);
        let top = b.add_top_unit().unwrap();
        let _mid = b.add_child(top).unwrap();
        // mid has no children but height is 3.
        assert!(b.build().is_err());
    }

    #[test]
    fn builder_rejects_children_below_base_level() {
        let mut b = SpIndexBuilder::new(2);
        let top = b.add_top_unit().unwrap();
        let leaf = b.add_child(top).unwrap();
        assert!(b.add_child(leaf).is_err());
    }

    #[test]
    fn builder_rejects_empty_hierarchy() {
        let b = SpIndexBuilder::new(2);
        assert!(b.build().is_err());
    }

    #[test]
    fn unknown_units_are_reported() {
        let (sp, _) = example_hierarchy();
        assert!(matches!(sp.level(999), Err(ModelError::UnknownSpatialUnit(999))));
        assert!(sp.parent(999).is_err());
        assert!(sp.children(999).is_err());
    }

    #[test]
    fn units_at_level_lists_every_unit_once() {
        let sp = SpIndex::uniform(2, &[3, 2]).unwrap();
        let total: usize = (1..=sp.height()).map(|l| sp.units_at_level(l).len()).sum();
        assert_eq!(total, sp.num_units());
    }

    #[test]
    fn single_level_hierarchy_is_allowed() {
        let sp = SpIndex::uniform(5, &[]).unwrap();
        assert_eq!(sp.height(), 1);
        assert_eq!(sp.num_base_units(), 5);
        for &u in sp.base_units() {
            assert!(sp.is_base(u).unwrap());
            assert_eq!(sp.level(u).unwrap(), 1);
        }
    }
}
