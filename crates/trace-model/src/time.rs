//! Temporal units and time periods.
//!
//! The paper discretises time into *base temporal units* (an hour by default in
//! the experiments).  A presence instance carries a continuous time period
//! `[start_time, end_time)`; the ST-cell representation then splits it into the
//! base temporal units it covers.

use crate::error::{ModelError, Result};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A discretised base temporal unit (e.g. "hour 17 since the epoch of the dataset").
pub type TimeUnit = u32;

/// A half-open time period `[start, end)`, measured in raw ticks (e.g. minutes or
/// seconds — whatever resolution the source data has).
///
/// The mapping from raw ticks to [`TimeUnit`]s is controlled by
/// [`Period::units`] via the `ticks_per_unit` argument.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Period {
    /// Inclusive start tick.
    pub start: u64,
    /// Exclusive end tick.
    pub end: u64,
}

impl Period {
    /// Creates a new period, validating that `end >= start`.
    pub fn new(start: u64, end: u64) -> Result<Self> {
        if end < start {
            return Err(ModelError::InvalidPeriod { start, end });
        }
        Ok(Period { start, end })
    }

    /// A single-tick instantaneous period (length 1).
    pub fn instant(at: u64) -> Self {
        Period { start: at, end: at + 1 }
    }

    /// Length of the period in ticks.
    #[inline]
    pub fn length(&self) -> u64 {
        self.end - self.start
    }

    /// True when the period covers no ticks at all.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.end == self.start
    }

    /// Intersection with another period; `None` when the two do not overlap.
    ///
    /// Definition 3 (Adjoint Presence Instance) requires `pd_a ∩ pd_b ≠ ∅`; two
    /// periods that merely touch at a boundary do **not** overlap because the
    /// intervals are half-open.
    pub fn intersect(&self, other: &Period) -> Option<Period> {
        let start = self.start.max(other.start);
        let end = self.end.min(other.end);
        if start < end {
            Some(Period { start, end })
        } else {
            None
        }
    }

    /// True when the two periods share at least one tick.
    #[inline]
    pub fn overlaps(&self, other: &Period) -> bool {
        self.intersect(other).is_some()
    }

    /// The base temporal units covered by this period, given the number of raw
    /// ticks per unit.  A period covering any fraction of a unit counts as being
    /// present for that unit (the paper's ST-cell is an atomic presence unit).
    pub fn units(&self, ticks_per_unit: u64) -> impl Iterator<Item = TimeUnit> {
        assert!(ticks_per_unit > 0, "ticks_per_unit must be positive");
        let first = self.start / ticks_per_unit;
        // Half-open: a period ending exactly on a unit boundary does not reach the
        // next unit.
        let last = if self.is_empty() { first } else { (self.end - 1) / ticks_per_unit + 1 };
        (first..last).map(|u| u as TimeUnit)
    }
}

impl fmt::Display for Period {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}, {})", self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_rejects_inverted_periods() {
        assert!(Period::new(5, 4).is_err());
        assert!(Period::new(5, 5).is_ok());
        assert!(Period::new(0, 10).is_ok());
    }

    #[test]
    fn instant_has_length_one() {
        let p = Period::instant(7);
        assert_eq!(p.length(), 1);
        assert!(!p.is_empty());
    }

    #[test]
    fn intersection_of_overlapping_periods() {
        let a = Period::new(0, 10).unwrap();
        let b = Period::new(5, 15).unwrap();
        assert_eq!(a.intersect(&b), Some(Period { start: 5, end: 10 }));
        assert_eq!(b.intersect(&a), Some(Period { start: 5, end: 10 }));
    }

    #[test]
    fn touching_periods_do_not_overlap() {
        let a = Period::new(0, 5).unwrap();
        let b = Period::new(5, 10).unwrap();
        assert_eq!(a.intersect(&b), None);
        assert!(!a.overlaps(&b));
    }

    #[test]
    fn disjoint_periods_do_not_overlap() {
        let a = Period::new(0, 3).unwrap();
        let b = Period::new(7, 10).unwrap();
        assert!(a.intersect(&b).is_none());
    }

    #[test]
    fn empty_period_produces_no_units() {
        let p = Period::new(10, 10).unwrap();
        assert_eq!(p.units(5).count(), 0);
    }

    #[test]
    fn units_cover_partial_boundaries() {
        // Ticks 0..=59 are unit 0, 60..=119 unit 1, ...
        let p = Period::new(30, 130).unwrap();
        let units: Vec<TimeUnit> = p.units(60).collect();
        assert_eq!(units, vec![0, 1, 2]);
    }

    #[test]
    fn units_exact_boundary_is_exclusive() {
        let p = Period::new(0, 60).unwrap();
        let units: Vec<TimeUnit> = p.units(60).collect();
        assert_eq!(units, vec![0]);
    }

    #[test]
    fn display_formats_half_open() {
        assert_eq!(Period::new(1, 4).unwrap().to_string(), "[1, 4)");
    }
}
