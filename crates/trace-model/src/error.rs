//! Error types shared by the trace data model.

use std::fmt;

/// Convenient result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, ModelError>;

/// Errors produced while constructing or manipulating the trace data model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelError {
    /// A spatial unit id was used that does not exist in the sp-index.
    UnknownSpatialUnit(u32),
    /// An entity id was used that is not present in the trace set.
    UnknownEntity(u64),
    /// A presence instance refers to a level outside `1..=m`.
    InvalidLevel {
        /// The offending level.
        level: u8,
        /// The height of the sp-index.
        height: u8,
    },
    /// A time period whose end precedes its start.
    InvalidPeriod {
        /// Period start (inclusive).
        start: u64,
        /// Period end (exclusive).
        end: u64,
    },
    /// The sp-index under construction is structurally invalid.
    InvalidHierarchy(String),
    /// A measure parameter is outside its documented domain.
    InvalidMeasureParameter(String),
}

impl fmt::Display for ModelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ModelError::UnknownSpatialUnit(id) => write!(f, "unknown spatial unit id {id}"),
            ModelError::UnknownEntity(id) => write!(f, "unknown entity id {id}"),
            ModelError::InvalidLevel { level, height } => {
                write!(f, "level {level} outside the sp-index height 1..={height}")
            }
            ModelError::InvalidPeriod { start, end } => {
                write!(f, "invalid period: end {end} precedes start {start}")
            }
            ModelError::InvalidHierarchy(msg) => write!(f, "invalid spatial hierarchy: {msg}"),
            ModelError::InvalidMeasureParameter(msg) => {
                write!(f, "invalid measure parameter: {msg}")
            }
        }
    }
}

impl std::error::Error for ModelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let cases: Vec<(ModelError, &str)> = vec![
            (ModelError::UnknownSpatialUnit(7), "unknown spatial unit id 7"),
            (ModelError::UnknownEntity(9), "unknown entity id 9"),
            (
                ModelError::InvalidLevel { level: 9, height: 4 },
                "level 9 outside the sp-index height 1..=4",
            ),
            (
                ModelError::InvalidPeriod { start: 5, end: 2 },
                "invalid period: end 2 precedes start 5",
            ),
        ];
        for (err, expect) in cases {
            assert_eq!(err.to_string(), expect);
        }
    }

    #[test]
    fn errors_are_comparable_and_cloneable() {
        let a = ModelError::UnknownEntity(1);
        let b = a.clone();
        assert_eq!(a, b);
        assert_ne!(a, ModelError::UnknownEntity(2));
    }
}
