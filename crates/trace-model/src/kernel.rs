//! Branch-light merge kernels over packed `u64` slices.
//!
//! Every exact path of the MinSigTree index bottoms out in sorted-set
//! intersections ([`crate::cell::CellSet`]) and element-wise signature merges.
//! This module isolates those innermost loops so they operate on flat `&[u64]`
//! slices with no pointer chasing and (for the similar-size case) no
//! data-dependent branches, which lets the compiler keep the loop bodies in
//! registers and autovectorize the comparisons.
//!
//! Four intersection kernels are provided, all returning the exact same count:
//!
//! * [`intersection_len_merge`] — the three-way-compare two-pointer merge.
//!   LLVM lowers the match arms to conditional moves, so the compiled loop is
//!   already branch-light; it doubles as the readable conformance oracle.
//! * [`intersection_len_masked`] — the same merge with advance and count
//!   updates spelled as explicit comparison masks (`i += (x <= y)`).  Kept so
//!   the microbench can compare the two formulations on every target; on
//!   current x86-64 codegen the extra mask arithmetic makes it measurably
//!   slower than the merge, so the dispatcher does not use it.
//! * [`intersection_len_gallop`] — iterates the smaller set and locates each
//!   element in the larger one by exponential (galloping) search, giving
//!   `O(small · log(large / small))` work.  Fastest when the sizes are skewed.
//! * [`intersection_len_simd`] — explicit [`SIMD_LANES`]-wide block
//!   intersection using AVX2 intrinsics (with an SSE2 block kernel and a
//!   scalar merge as runtime-safe fallbacks).  Fastest on similar-size inputs
//!   of a few hundred elements and up.
//!
//! [`intersection_len`] dispatches between them: tiny inputs (≤ [`TINY_LEN`]
//! on both sides) take a branch-free all-pairs loop, heavily skewed sizes
//! (ratio ≥ [`GALLOP_SKEW`]) gallop, and the similar-size regime takes the
//! SIMD kernel when the `simd` cargo feature is enabled (the scalar merge
//! otherwise).  [`dispatch_class`] exposes the decision as a pure function of
//! the two lengths so callers can account which kernel a given intersection
//! used without instrumenting the hot loop itself.
//!
//! All kernels require their inputs sorted ascending and deduplicated; every
//! public entry point `debug_assert!`s that invariant.

/// Size-ratio threshold for switching from the two-pointer merge to galloping:
/// gallop when `max_len >= GALLOP_SKEW * min_len`.
///
/// The merge inspects `O(min + max)` elements while galloping inspects
/// `O(min · log(max / min))`; at a ratio of 8 the logarithmic factor is already
/// amortised and galloping wins on every measured size.
pub const GALLOP_SKEW: usize = 8;

/// Inputs where *both* sides are at most this long skip kernel dispatch
/// entirely and take a branch-free all-pairs comparison loop (at most
/// `TINY_LEN²` = 64 compares, no data-dependent branches at all).
pub const TINY_LEN: usize = 8;

/// Lane width (in `u64` elements) of the widest SIMD intersection kernel
/// ([`intersection_len_simd`]'s AVX2 path).  The SSE2 fallback processes 2
/// lanes; the scalar fallback 1.
pub const SIMD_LANES: usize = 4;

/// Which kernel [`intersection_len`] routes a given pair of input lengths to.
///
/// Returned by [`dispatch_class`]; the mapping depends only on the two
/// lengths (and the `simd` cargo feature), never on the slice contents, so
/// callers can classify an intersection without re-running it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KernelClass {
    /// Both sides ≤ [`TINY_LEN`] (or one side empty): branch-free all-pairs.
    Tiny,
    /// Size ratio ≥ [`GALLOP_SKEW`]: exponential search over the larger side.
    Gallop,
    /// Similar sizes with the `simd` feature enabled: blockwise SIMD kernel.
    Simd,
    /// Similar sizes without the `simd` feature: scalar two-pointer merge.
    Merge,
}

/// The kernel [`intersection_len`] will use for inputs of the given lengths.
///
/// Pure in the lengths: `intersection_len(a, b)` runs the kernel
/// `dispatch_class(a.len(), b.len())` names.  One side empty classifies as
/// [`KernelClass::Tiny`] (the all-pairs loop over zero pairs returns 0
/// immediately).
#[inline]
pub fn dispatch_class(a_len: usize, b_len: usize) -> KernelClass {
    let (min, max) = if a_len <= b_len { (a_len, b_len) } else { (b_len, a_len) };
    if min == 0 || max <= TINY_LEN {
        KernelClass::Tiny
    } else if min.saturating_mul(GALLOP_SKEW) <= max {
        KernelClass::Gallop
    } else if cfg!(feature = "simd") {
        KernelClass::Simd
    } else {
        KernelClass::Merge
    }
}

/// True iff `s` is sorted ascending with no duplicates — the input contract
/// of every intersection kernel, checked via `debug_assert!` at the public
/// entry points.
#[inline]
fn is_sorted_dedup(s: &[u64]) -> bool {
    s.windows(2).all(|w| w[0] < w[1])
}

/// Branch-free all-pairs intersection for tiny inputs (both ≤ [`TINY_LEN`]).
///
/// At most 64 equality tests, each lowered to a flag-set + add with no
/// data-dependent branch; for these sizes the fixed overhead of any of the
/// dispatched kernels (pointer setup, probe bookkeeping, SIMD feature check)
/// exceeds the whole loop.
#[inline]
fn intersection_len_tiny(a: &[u64], b: &[u64]) -> usize {
    let mut count = 0usize;
    for &x in a {
        for &y in b {
            count += usize::from(x == y);
        }
    }
    count
}

/// Intersection size of two sorted, deduplicated slices — three-way-compare
/// two-pointer merge.
///
/// The readable formulation is also the fast one: LLVM lowers the match arms
/// to conditional moves, so the compiled loop carries no unpredictable branch.
/// This is the dispatcher's balanced-size scalar kernel and the conformance
/// oracle for the other kernels.
pub fn intersection_len_merge(a: &[u64], b: &[u64]) -> usize {
    debug_assert!(is_sorted_dedup(a), "kernel input `a` must be sorted and deduplicated");
    debug_assert!(is_sorted_dedup(b), "kernel input `b` must be sorted and deduplicated");
    let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Intersection size of two sorted, deduplicated slices — two-pointer merge
/// with advance and count updates spelled as explicit comparison masks.
///
/// Semantically identical to [`intersection_len_merge`]; kept public so the
/// kernel microbench can compare the two formulations on every target.  On
/// current x86-64 codegen the extra mask arithmetic loses to the conditional
/// moves LLVM already emits for the merge, so the dispatcher prefers the
/// merge.
pub fn intersection_len_masked(a: &[u64], b: &[u64]) -> usize {
    debug_assert!(is_sorted_dedup(a), "kernel input `a` must be sorted and deduplicated");
    debug_assert!(is_sorted_dedup(b), "kernel input `b` must be sorted and deduplicated");
    let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
    let (na, nb) = (a.len(), b.len());
    while i < na && j < nb {
        let x = a[i];
        let y = b[j];
        count += usize::from(x == y);
        i += usize::from(x <= y);
        j += usize::from(y <= x);
    }
    count
}

/// Lower bound of `x` in `large[base..]` found by exponential probing followed
/// by a binary search over the bracketed window.
#[inline]
fn gallop_lower_bound(large: &[u64], base: usize, x: u64) -> usize {
    if base >= large.len() || large[base] >= x {
        return base;
    }
    // Invariant: `large[base + offset/2] < x` (for offset == 1 this is
    // `large[base] < x`, established above).
    let mut offset = 1usize;
    loop {
        let probe = base + offset;
        if probe >= large.len() || large[probe] >= x {
            break;
        }
        offset <<= 1;
    }
    let lo = base + (offset >> 1) + 1;
    let hi = (base + offset).min(large.len());
    lo + large[lo..hi].partition_point(|&v| v < x)
}

/// Intersection size of two sorted, deduplicated slices — galloping
/// (exponential-search) kernel for skewed sizes.
///
/// Iterates the smaller slice and locates each element in the larger one by
/// exponential probing from the previous match position, doing
/// `O(small · log(large / small))` comparisons instead of the merge's
/// `O(small + large)`.  Preferred when one set is at least [`GALLOP_SKEW`]
/// times the other.
pub fn intersection_len_gallop(a: &[u64], b: &[u64]) -> usize {
    debug_assert!(is_sorted_dedup(a), "kernel input `a` must be sorted and deduplicated");
    debug_assert!(is_sorted_dedup(b), "kernel input `b` must be sorted and deduplicated");
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut base = 0usize;
    let mut count = 0usize;
    for &x in small {
        base = gallop_lower_bound(large, base, x);
        if base >= large.len() {
            break;
        }
        if large[base] == x {
            count += 1;
            base += 1;
        }
    }
    count
}

/// Intersection size of two sorted, deduplicated slices — explicit SIMD
/// blockwise kernel with runtime feature detection.
///
/// On x86-64 with AVX2 this compares [`SIMD_LANES`]-wide (4×`u64`) blocks of
/// the two inputs: the current `a`-block is tested against the current
/// `b`-block and its three lane rotations (so every lane pair is compared
/// exactly once), the per-lane hit mask is popcounted, and whichever block has
/// the smaller maximum advances (both on ties).  Because the inputs are
/// deduplicated, a common value lives in exactly one block on each side and
/// those two blocks are simultaneously current in exactly one iteration, so
/// each match is counted exactly once; any partial-block tail is finished by
/// the scalar merge.  Without AVX2 an SSE2 2-lane variant of the same scheme
/// runs (SSE2 is part of the x86-64 baseline), and on other architectures
/// this function *is* [`intersection_len_merge`] — so it is always safe to
/// call and always returns the exact count.
///
/// This function is compiled unconditionally; the `simd` cargo feature only
/// controls whether [`intersection_len`] routes the similar-size regime here.
pub fn intersection_len_simd(a: &[u64], b: &[u64]) -> usize {
    debug_assert!(is_sorted_dedup(a), "kernel input `a` must be sorted and deduplicated");
    debug_assert!(is_sorted_dedup(b), "kernel input `b` must be sorted and deduplicated");
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { x86::intersection_len_avx2(a, b) }
        } else {
            // SAFETY: SSE2 is part of the x86-64 baseline.
            unsafe { x86::intersection_len_sse2(a, b) }
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        intersection_len_merge(a, b)
    }
}

/// Intersection size of two sorted, deduplicated slices, dispatching by input
/// shape: tiny inputs (both ≤ [`TINY_LEN`]) take a branch-free all-pairs
/// loop, size ratios ≥ [`GALLOP_SKEW`] take [`intersection_len_gallop`], and
/// the similar-size regime takes [`intersection_len_simd`] when the `simd`
/// cargo feature is enabled ([`intersection_len_merge`] otherwise).
///
/// The routing is exactly [`dispatch_class`] of the two lengths, and every
/// kernel returns the identical exact count, so the dispatch decision can
/// never change an answer.
#[inline]
pub fn intersection_len(a: &[u64], b: &[u64]) -> usize {
    debug_assert!(is_sorted_dedup(a), "kernel input `a` must be sorted and deduplicated");
    debug_assert!(is_sorted_dedup(b), "kernel input `b` must be sorted and deduplicated");
    match dispatch_class(a.len(), b.len()) {
        KernelClass::Tiny => intersection_len_tiny(a, b),
        KernelClass::Gallop => intersection_len_gallop(a, b),
        KernelClass::Simd => intersection_len_simd(a, b),
        KernelClass::Merge => intersection_len_merge(a, b),
    }
}

/// Element-wise minimum merge: `dst[i] = min(dst[i], src[i])` — scalar loop.
///
/// The loop is branch-free and autovectorizes; kept public as the conformance
/// oracle for [`merge_min_simd`].  The slices must have equal length (the
/// signature width).
#[inline]
pub fn merge_min_scalar(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len(), "signature widths must match");
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        *d = (*d).min(s);
    }
}

/// Element-wise minimum merge with explicit SIMD: `dst[i] = min(dst[i],
/// src[i])` on 4×`u64` AVX2 blocks (unsigned min emulated by sign-bit flip +
/// signed compare + blend, since unsigned 64-bit min is AVX-512-only), with a
/// scalar tail and a full scalar fallback when AVX2 is absent.
///
/// Element-wise integer minimum is exact, so this is bit-identical to
/// [`merge_min_scalar`] by construction.  Compiled unconditionally; the
/// `simd` cargo feature only controls whether [`merge_min`] routes here.
pub fn merge_min_simd(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len(), "signature widths must match");
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx2") {
            // SAFETY: AVX2 support was just verified at runtime.
            unsafe { x86::merge_min_avx2(dst, src) };
            return;
        }
    }
    merge_min_scalar(dst, src);
}

/// Element-wise minimum merge: `dst[i] = min(dst[i], src[i])`.
///
/// This is the MinHash signature-merge primitive; the slices must have equal
/// length (the signature width).  Routes to [`merge_min_simd`] when the
/// `simd` cargo feature is enabled, [`merge_min_scalar`] otherwise; both are
/// exact integer minima, so the answers cannot differ.
#[inline]
pub fn merge_min(dst: &mut [u64], src: &[u64]) {
    if cfg!(feature = "simd") {
        merge_min_simd(dst, src);
    } else {
        merge_min_scalar(dst, src);
    }
}

/// Index of the maximum element, breaking ties toward the lowest index.
///
/// Runs with the current maximum hoisted into a register (no re-read of
/// `values[best]` per iteration).  Returns 0 for an empty slice, matching the
/// routing convention for empty signatures.
#[inline]
pub fn argmax(values: &[u64]) -> usize {
    let Some((&first, rest)) = values.split_first() else { return 0 };
    let mut best = 0usize;
    let mut best_val = first;
    for (i, &v) in rest.iter().enumerate() {
        if v > best_val {
            best = i + 1;
            best_val = v;
        }
    }
    best
}

/// x86-64 intrinsic implementations of the SIMD kernels.
///
/// The AVX2 functions are `#[target_feature]`-gated and only reached behind
/// a runtime `is_x86_feature_detected!("avx2")` check; the SSE2 function uses
/// only baseline x86-64 instructions.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use std::arch::x86_64::*;

    const AVX_LANES: usize = super::SIMD_LANES; // 4 × u64 per __m256i
    const SSE_LANES: usize = 2; // 2 × u64 per __m128i

    /// Blockwise 4-lane intersection count.  See [`super::intersection_len_simd`]
    /// for the counting argument; the block-advance rule (`smaller max moves,
    /// both on ties`) guarantees the two blocks containing a common value are
    /// simultaneously current in exactly one iteration.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn intersection_len_avx2(a: &[u64], b: &[u64]) -> usize {
        let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
        let na = a.len() & !(AVX_LANES - 1);
        let nb = b.len() & !(AVX_LANES - 1);
        while i < na && j < nb {
            // SAFETY: `i + AVX_LANES <= na <= a.len()` (and likewise for `b`),
            // and the loads are explicitly unaligned.
            let va = _mm256_loadu_si256(a.as_ptr().add(i).cast());
            let vb = _mm256_loadu_si256(b.as_ptr().add(j).cast());
            // Compare every a-lane against every b-lane: vb and its three
            // lane rotations cover all 16 pairs exactly once.
            let m0 = _mm256_cmpeq_epi64(va, vb);
            let m1 = _mm256_cmpeq_epi64(va, _mm256_permute4x64_epi64(vb, 0b00_11_10_01));
            let m2 = _mm256_cmpeq_epi64(va, _mm256_permute4x64_epi64(vb, 0b01_00_11_10));
            let m3 = _mm256_cmpeq_epi64(va, _mm256_permute4x64_epi64(vb, 0b10_01_00_11));
            let any = _mm256_or_si256(_mm256_or_si256(m0, m1), _mm256_or_si256(m2, m3));
            // One mask bit per a-lane; dedup means each lane matches at most
            // one b-lane, so the popcount is the exact pair count.
            count += (_mm256_movemask_pd(_mm256_castsi256_pd(any)) as u32).count_ones() as usize;
            let a_max = *a.get_unchecked(i + AVX_LANES - 1);
            let b_max = *b.get_unchecked(j + AVX_LANES - 1);
            i += if a_max <= b_max { AVX_LANES } else { 0 };
            j += if b_max <= a_max { AVX_LANES } else { 0 };
        }
        count + super::intersection_len_merge(&a[i..], &b[j..])
    }

    /// 64-bit lane equality from SSE2-only ops: compare the 32-bit halves and
    /// AND each half's mask with its sibling's.
    #[inline]
    unsafe fn cmpeq_epi64_sse2(x: __m128i, y: __m128i) -> __m128i {
        let eq32 = _mm_cmpeq_epi32(x, y);
        _mm_and_si128(eq32, _mm_shuffle_epi32(eq32, 0b10_11_00_01))
    }

    /// Blockwise 2-lane intersection count using only baseline x86-64
    /// instructions — the runtime fallback when AVX2 is unavailable.
    pub(super) unsafe fn intersection_len_sse2(a: &[u64], b: &[u64]) -> usize {
        let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
        let na = a.len() & !(SSE_LANES - 1);
        let nb = b.len() & !(SSE_LANES - 1);
        while i < na && j < nb {
            // SAFETY: `i + SSE_LANES <= na <= a.len()` (and likewise for `b`).
            let va = _mm_loadu_si128(a.as_ptr().add(i).cast());
            let vb = _mm_loadu_si128(b.as_ptr().add(j).cast());
            let rot = _mm_shuffle_epi32(vb, 0b01_00_11_10); // swap the two u64 lanes
            let any = _mm_or_si128(cmpeq_epi64_sse2(va, vb), cmpeq_epi64_sse2(va, rot));
            count += (_mm_movemask_pd(_mm_castsi128_pd(any)) as u32).count_ones() as usize;
            let a_max = *a.get_unchecked(i + SSE_LANES - 1);
            let b_max = *b.get_unchecked(j + SSE_LANES - 1);
            i += if a_max <= b_max { SSE_LANES } else { 0 };
            j += if b_max <= a_max { SSE_LANES } else { 0 };
        }
        count + super::intersection_len_merge(&a[i..], &b[j..])
    }

    /// 4-lane element-wise unsigned minimum into `dst`.  Unsigned 64-bit min
    /// has no AVX2 instruction; flipping the sign bit maps unsigned order onto
    /// signed order, so `cmpgt_epi64` + `blendv` selects the unsigned min.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn merge_min_avx2(dst: &mut [u64], src: &[u64]) {
        let n = dst.len().min(src.len());
        let blocks = n & !(AVX_LANES - 1);
        let sign = _mm256_set1_epi64x(i64::MIN);
        let mut i = 0usize;
        while i < blocks {
            // SAFETY: `i + AVX_LANES <= blocks <= dst.len().min(src.len())`.
            let d = _mm256_loadu_si256(dst.as_ptr().add(i).cast());
            let s = _mm256_loadu_si256(src.as_ptr().add(i).cast());
            let gt = _mm256_cmpgt_epi64(_mm256_xor_si256(d, sign), _mm256_xor_si256(s, sign));
            let min = _mm256_blendv_epi8(d, s, gt);
            _mm256_storeu_si256(dst.as_mut_ptr().add(i).cast(), min);
            i += AVX_LANES;
        }
        for k in i..n {
            let s = src[k];
            if s < dst[k] {
                dst[k] = s;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_kernels(a: &[u64], b: &[u64]) -> Vec<usize> {
        vec![
            intersection_len_merge(a, b),
            intersection_len_masked(a, b),
            intersection_len_gallop(a, b),
            intersection_len_simd(a, b),
            intersection_len(a, b),
        ]
    }

    fn assert_agree(a: &[u64], b: &[u64], expect: usize) {
        for (k, got) in all_kernels(a, b).into_iter().enumerate() {
            assert_eq!(got, expect, "kernel {k} disagrees on {a:?} ∩ {b:?}");
        }
        // Symmetry.
        for (k, got) in all_kernels(b, a).into_iter().enumerate() {
            assert_eq!(got, expect, "kernel {k} disagrees on swapped {b:?} ∩ {a:?}");
        }
    }

    #[test]
    fn empty_and_disjoint() {
        assert_agree(&[], &[], 0);
        assert_agree(&[], &[1, 2, 3], 0);
        assert_agree(&[1, 3, 5], &[2, 4, 6], 0);
    }

    #[test]
    fn identical_and_subset() {
        assert_agree(&[1, 2, 3], &[1, 2, 3], 3);
        assert_agree(&[2], &[1, 2, 3], 1);
        assert_agree(&[1, 3], &[0, 1, 2, 3, 4], 2);
    }

    #[test]
    fn skewed_sizes_hit_the_gallop_path() {
        let small: Vec<u64> = vec![7, 100, 901];
        let large: Vec<u64> = (0..1000).collect();
        assert!(small.len() * GALLOP_SKEW <= large.len());
        assert_agree(&small, &large, 3);
        // Elements past the end of the large set.
        assert_agree(&[500, 5000], &large, 1);
        // First element before the start.
        let shifted: Vec<u64> = (10..1000).collect();
        assert_agree(&[0, 10, 999, 5000], &shifted, 2);
    }

    #[test]
    fn interleaved_runs() {
        let a: Vec<u64> = (0..100).map(|i| i * 2).collect();
        let b: Vec<u64> = (0..100).map(|i| i * 3).collect();
        let expect = a.iter().filter(|x| b.contains(x)).count();
        assert_agree(&a, &b, expect);
    }

    #[test]
    fn simd_lane_width_boundaries() {
        // Lengths straddling the 4-lane AVX2 block and the 2-lane SSE2 block:
        // partial blocks must be finished exactly by the scalar tail.
        for la in 0..=10usize {
            for lb in 0..=10usize {
                let a: Vec<u64> = (0..la as u64).map(|i| i * 3).collect();
                let b: Vec<u64> = (0..lb as u64).map(|i| i * 2 + 1).collect();
                let expect = a.iter().filter(|x| b.contains(x)).count();
                assert_agree(&a, &b, expect);
            }
        }
    }

    #[test]
    fn tiny_inputs_route_to_the_all_pairs_loop() {
        assert_eq!(dispatch_class(0, 0), KernelClass::Tiny);
        assert_eq!(dispatch_class(0, 4096), KernelClass::Tiny);
        assert_eq!(dispatch_class(TINY_LEN, TINY_LEN), KernelClass::Tiny);
        assert_eq!(dispatch_class(1, TINY_LEN), KernelClass::Tiny);
        // One side past TINY_LEN leaves the tiny regime.
        assert_eq!(dispatch_class(1, TINY_LEN + 1), KernelClass::Gallop);
        let similar = dispatch_class(TINY_LEN + 1, TINY_LEN + 1);
        if cfg!(feature = "simd") {
            assert_eq!(similar, KernelClass::Simd);
        } else {
            assert_eq!(similar, KernelClass::Merge);
        }
        assert_eq!(dispatch_class(64, 64 * GALLOP_SKEW), KernelClass::Gallop);
    }

    #[test]
    fn dispatch_class_matches_the_documented_ratio_rule() {
        for a in 0..64usize {
            for b in 0..64usize {
                let class = dispatch_class(a, b);
                assert_eq!(class, dispatch_class(b, a), "dispatch must be symmetric");
                let (min, max) = (a.min(b), a.max(b));
                if min == 0 || max <= TINY_LEN {
                    assert_eq!(class, KernelClass::Tiny);
                } else if min * GALLOP_SKEW <= max {
                    assert_eq!(class, KernelClass::Gallop);
                } else {
                    assert_ne!(class, KernelClass::Tiny);
                    assert_ne!(class, KernelClass::Gallop);
                }
            }
        }
    }

    #[test]
    fn merge_min_is_elementwise() {
        let mut dst = vec![5, 1, 7, u64::MAX];
        merge_min(&mut dst, &[3, 2, 7, 0]);
        assert_eq!(dst, vec![3, 1, 7, 0]);
    }

    #[test]
    fn merge_min_simd_matches_scalar_across_widths() {
        for width in 0..=67usize {
            let mut scalar: Vec<u64> =
                (0..width as u64).map(|i| i.wrapping_mul(0x9E37_79B9_7F4A_7C15)).collect();
            let src: Vec<u64> =
                (0..width as u64).map(|i| (!i).wrapping_mul(0xBF58_476D_1CE4_E5B9)).collect();
            let mut simd = scalar.clone();
            merge_min_scalar(&mut scalar, &src);
            merge_min_simd(&mut simd, &src);
            assert_eq!(simd, scalar, "merge_min_simd diverged at width {width}");
        }
    }

    #[test]
    fn merge_min_simd_handles_sign_bit_values() {
        // The AVX2 path emulates unsigned min via a sign-bit flip; values on
        // both sides of i64::MIN exercise that mapping.
        let mut dst = vec![u64::MAX, 1 << 63, (1 << 63) - 1, 0, u64::MAX - 1, 1 << 63, 3, 9];
        let src = vec![1 << 63, u64::MAX, 1 << 63, u64::MAX, u64::MAX, (1 << 63) - 1, 9, 3];
        let mut expect = dst.clone();
        merge_min_scalar(&mut expect, &src);
        merge_min_simd(&mut dst, &src);
        assert_eq!(dst, expect);
    }

    #[test]
    fn argmax_breaks_ties_toward_lowest_index() {
        assert_eq!(argmax(&[]), 0);
        assert_eq!(argmax(&[9]), 0);
        assert_eq!(argmax(&[1, 9, 9, 3]), 1);
        assert_eq!(argmax(&[9, 9, 9]), 0);
        assert_eq!(argmax(&[1, 2, 9]), 2);
        assert_eq!(argmax(&[u64::MAX, u64::MAX]), 0);
    }
}
