//! Branch-light merge kernels over packed `u64` slices.
//!
//! Every exact path of the MinSigTree index bottoms out in sorted-set
//! intersections ([`crate::cell::CellSet`]) and element-wise signature merges.
//! This module isolates those innermost loops so they operate on flat `&[u64]`
//! slices with no pointer chasing and (for the similar-size case) no
//! data-dependent branches, which lets the compiler keep the loop bodies in
//! registers and autovectorize the comparisons.
//!
//! Three intersection kernels are provided, all returning the exact same count:
//!
//! * [`intersection_len_merge`] — the three-way-compare two-pointer merge.
//!   LLVM lowers the match arms to conditional moves, so the compiled loop is
//!   already branch-light; measured fastest when the two sets have similar
//!   sizes, and doubles as the readable conformance oracle.
//! * [`intersection_len_masked`] — the same merge with advance and count
//!   updates spelled as explicit comparison masks (`i += (x <= y)`).  Kept so
//!   the microbench can compare the two formulations on every target; on
//!   current x86-64 codegen the extra mask arithmetic makes it measurably
//!   slower than the merge, so the dispatcher does not use it.
//! * [`intersection_len_gallop`] — iterates the smaller set and locates each
//!   element in the larger one by exponential (galloping) search, giving
//!   `O(small · log(large / small))` work.  Fastest when the sizes are skewed.
//!
//! [`intersection_len`] dispatches between merge and gallop using the
//! [`GALLOP_SKEW`] heuristic (gallop when the larger set is at least 8× the
//! smaller one).

/// Size-ratio threshold for switching from the two-pointer merge to galloping:
/// gallop when `max_len >= GALLOP_SKEW * min_len`.
///
/// The merge inspects `O(min + max)` elements while galloping inspects
/// `O(min · log(max / min))`; at a ratio of 8 the logarithmic factor is already
/// amortised and galloping wins on every measured size.
pub const GALLOP_SKEW: usize = 8;

/// Intersection size of two sorted, deduplicated slices — three-way-compare
/// two-pointer merge.
///
/// The readable formulation is also the fast one: LLVM lowers the match arms
/// to conditional moves, so the compiled loop carries no unpredictable branch.
/// This is the dispatcher's balanced-size kernel and the conformance oracle
/// for the other kernels.
pub fn intersection_len_merge(a: &[u64], b: &[u64]) -> usize {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                count += 1;
                i += 1;
                j += 1;
            }
        }
    }
    count
}

/// Intersection size of two sorted, deduplicated slices — two-pointer merge
/// with advance and count updates spelled as explicit comparison masks.
///
/// Semantically identical to [`intersection_len_merge`]; kept public so the
/// kernel microbench can compare the two formulations on every target.  On
/// current x86-64 codegen the extra mask arithmetic loses to the conditional
/// moves LLVM already emits for the merge, so the dispatcher prefers the
/// merge.
pub fn intersection_len_masked(a: &[u64], b: &[u64]) -> usize {
    let (mut i, mut j, mut count) = (0usize, 0usize, 0usize);
    let (na, nb) = (a.len(), b.len());
    while i < na && j < nb {
        let x = a[i];
        let y = b[j];
        count += usize::from(x == y);
        i += usize::from(x <= y);
        j += usize::from(y <= x);
    }
    count
}

/// Lower bound of `x` in `large[base..]` found by exponential probing followed
/// by a binary search over the bracketed window.
#[inline]
fn gallop_lower_bound(large: &[u64], base: usize, x: u64) -> usize {
    if base >= large.len() || large[base] >= x {
        return base;
    }
    // Invariant: `large[base + offset/2] < x` (for offset == 1 this is
    // `large[base] < x`, established above).
    let mut offset = 1usize;
    loop {
        let probe = base + offset;
        if probe >= large.len() || large[probe] >= x {
            break;
        }
        offset <<= 1;
    }
    let lo = base + (offset >> 1) + 1;
    let hi = (base + offset).min(large.len());
    lo + large[lo..hi].partition_point(|&v| v < x)
}

/// Intersection size of two sorted, deduplicated slices — galloping
/// (exponential-search) kernel for skewed sizes.
///
/// Iterates the smaller slice and locates each element in the larger one by
/// exponential probing from the previous match position, doing
/// `O(small · log(large / small))` comparisons instead of the merge's
/// `O(small + large)`.  Preferred when one set is at least [`GALLOP_SKEW`]
/// times the other.
pub fn intersection_len_gallop(a: &[u64], b: &[u64]) -> usize {
    let (small, large) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    let mut base = 0usize;
    let mut count = 0usize;
    for &x in small {
        base = gallop_lower_bound(large, base, x);
        if base >= large.len() {
            break;
        }
        if large[base] == x {
            count += 1;
            base += 1;
        }
    }
    count
}

/// Intersection size of two sorted, deduplicated slices, dispatching between
/// [`intersection_len_merge`] (similar sizes) and
/// [`intersection_len_gallop`] (size ratio ≥ [`GALLOP_SKEW`]).
#[inline]
pub fn intersection_len(a: &[u64], b: &[u64]) -> usize {
    let (min, max) = if a.len() <= b.len() { (a.len(), b.len()) } else { (b.len(), a.len()) };
    if min == 0 {
        0
    } else if min.saturating_mul(GALLOP_SKEW) <= max {
        intersection_len_gallop(a, b)
    } else {
        intersection_len_merge(a, b)
    }
}

/// Element-wise minimum merge: `dst[i] = min(dst[i], src[i])`.
///
/// This is the MinHash signature-merge primitive; the slices must have equal
/// length (the signature width).  The loop is branch-free and autovectorizes.
#[inline]
pub fn merge_min(dst: &mut [u64], src: &[u64]) {
    debug_assert_eq!(dst.len(), src.len(), "signature widths must match");
    for (d, &s) in dst.iter_mut().zip(src.iter()) {
        *d = (*d).min(s);
    }
}

/// Index of the maximum element, breaking ties toward the lowest index.
///
/// Runs with the current maximum hoisted into a register (no re-read of
/// `values[best]` per iteration).  Returns 0 for an empty slice, matching the
/// routing convention for empty signatures.
#[inline]
pub fn argmax(values: &[u64]) -> usize {
    let Some((&first, rest)) = values.split_first() else { return 0 };
    let mut best = 0usize;
    let mut best_val = first;
    for (i, &v) in rest.iter().enumerate() {
        if v > best_val {
            best = i + 1;
            best_val = v;
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_kernels(a: &[u64], b: &[u64]) -> Vec<usize> {
        vec![
            intersection_len_merge(a, b),
            intersection_len_masked(a, b),
            intersection_len_gallop(a, b),
            intersection_len(a, b),
        ]
    }

    fn assert_agree(a: &[u64], b: &[u64], expect: usize) {
        for (k, got) in all_kernels(a, b).into_iter().enumerate() {
            assert_eq!(got, expect, "kernel {k} disagrees on {a:?} ∩ {b:?}");
        }
        // Symmetry.
        for (k, got) in all_kernels(b, a).into_iter().enumerate() {
            assert_eq!(got, expect, "kernel {k} disagrees on swapped {b:?} ∩ {a:?}");
        }
    }

    #[test]
    fn empty_and_disjoint() {
        assert_agree(&[], &[], 0);
        assert_agree(&[], &[1, 2, 3], 0);
        assert_agree(&[1, 3, 5], &[2, 4, 6], 0);
    }

    #[test]
    fn identical_and_subset() {
        assert_agree(&[1, 2, 3], &[1, 2, 3], 3);
        assert_agree(&[2], &[1, 2, 3], 1);
        assert_agree(&[1, 3], &[0, 1, 2, 3, 4], 2);
    }

    #[test]
    fn skewed_sizes_hit_the_gallop_path() {
        let small: Vec<u64> = vec![7, 100, 901];
        let large: Vec<u64> = (0..1000).collect();
        assert!(small.len() * GALLOP_SKEW <= large.len());
        assert_agree(&small, &large, 3);
        // Elements past the end of the large set.
        assert_agree(&[500, 5000], &large, 1);
        // First element before the start.
        let shifted: Vec<u64> = (10..1000).collect();
        assert_agree(&[0, 10, 999, 5000], &shifted, 2);
    }

    #[test]
    fn interleaved_runs() {
        let a: Vec<u64> = (0..100).map(|i| i * 2).collect();
        let b: Vec<u64> = (0..100).map(|i| i * 3).collect();
        let expect = a.iter().filter(|x| b.contains(x)).count();
        assert_agree(&a, &b, expect);
    }

    #[test]
    fn merge_min_is_elementwise() {
        let mut dst = vec![5, 1, 7, u64::MAX];
        merge_min(&mut dst, &[3, 2, 7, 0]);
        assert_eq!(dst, vec![3, 1, 7, 0]);
    }

    #[test]
    fn argmax_breaks_ties_toward_lowest_index() {
        assert_eq!(argmax(&[]), 0);
        assert_eq!(argmax(&[9]), 0);
        assert_eq!(argmax(&[1, 9, 9, 3]), 1);
        assert_eq!(argmax(&[9, 9, 9]), 0);
        assert_eq!(argmax(&[1, 2, 9]), 2);
        assert_eq!(argmax(&[u64::MAX, u64::MAX]), 0);
    }
}
