//! Entity identifiers.

use serde::{Deserialize, Serialize};
use std::fmt;

/// An opaque identifier for an entity (a person, a device, ...).
///
/// The paper's target applications track tens of millions of entities, so the id is
/// a `u64` newtype.  Using a newtype rather than a bare integer keeps entity ids,
/// spatial unit ids and time units from being mixed up at compile time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct EntityId(pub u64);

impl EntityId {
    /// Returns the raw integer value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl From<u64> for EntityId {
    fn from(v: u64) -> Self {
        EntityId(v)
    }
}

impl From<EntityId> for u64 {
    fn from(v: EntityId) -> Self {
        v.0
    }
}

impl fmt::Display for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn conversions_round_trip() {
        let id = EntityId::from(42u64);
        assert_eq!(id.raw(), 42);
        assert_eq!(u64::from(id), 42);
        assert_eq!(id, EntityId(42));
    }

    #[test]
    fn display_is_prefixed() {
        assert_eq!(EntityId(7).to_string(), "e7");
    }

    #[test]
    fn ordering_follows_raw_value() {
        let mut set = BTreeSet::new();
        set.insert(EntityId(3));
        set.insert(EntityId(1));
        set.insert(EntityId(2));
        let ordered: Vec<u64> = set.into_iter().map(|e| e.raw()).collect();
        assert_eq!(ordered, vec![1, 2, 3]);
    }
}
