//! Adjoint presence instances (Definition 3) and per-level overlap statistics.
//!
//! An AjPI is a spatio-temporal co-occurrence of two entities: two presence
//! instances with overlapping time periods whose paths share at least one common
//! ancestor.  The level of the AjPI is the number of common ancestors (the depth
//! of the deepest shared spatial unit).
//!
//! The association degree measures of Section 3.2 only consume aggregated
//! statistics of the AjPIs, so this module also provides [`LevelOverlap`], the
//! per-level overlap summary computed from ST-cell set sequences (this is both
//! much cheaper than enumerating raw AjPIs and exactly what Equation 7.1 uses:
//! `|P^l_ab|` equals the number of shared level-`l` ST-cells when durations are
//! measured in base temporal units).

use crate::cell::CellSetSequence;
use crate::entity::EntityId;
use crate::error::Result;
use crate::presence::DigitalTrace;
use crate::spatial::{Level, SpIndex, SpatialUnitId};
use crate::time::Period;
use serde::{Deserialize, Serialize};

/// A single adjoint presence instance between two entities.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdjointPresence {
    /// The two entities forming the AjPI.
    pub entities: (EntityId, EntityId),
    /// The deepest common spatial ancestor of the two presences.
    pub common_unit: SpatialUnitId,
    /// The level of the AjPI (`|path_ab|`).
    pub level: Level,
    /// The temporal intersection of the two presences.
    pub period: Period,
}

/// Enumerates all AjPIs between two traces (quadratic in the trace lengths; meant
/// for analysis and ground-truth tests rather than the hot query path).
pub fn enumerate_ajpis(
    sp: &SpIndex,
    ea: EntityId,
    ta: &DigitalTrace,
    eb: EntityId,
    tb: &DigitalTrace,
) -> Result<Vec<AdjointPresence>> {
    let mut out = Vec::new();
    for pa in ta.instances() {
        let path_a = sp.path(pa.unit)?;
        for pb in tb.instances() {
            let Some(period) = pa.period.intersect(&pb.period) else { continue };
            let path_b = sp.path(pb.unit)?;
            let mut level = 0usize;
            while level < path_a.len() && level < path_b.len() && path_a[level] == path_b[level] {
                level += 1;
            }
            if level == 0 {
                continue;
            }
            out.push(AdjointPresence {
                entities: (ea, eb),
                common_unit: path_a[level - 1],
                level: level as Level,
                period,
            });
        }
    }
    Ok(out)
}

/// Per-level statistics of one level: the overlap (shared ST-cells, i.e. shared
/// presence duration in base temporal units) and the two set sizes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelStat {
    /// `|seq^l_a ∩ seq^l_b|` — the duration of level-`l` AjPIs in base temporal units.
    pub overlap: usize,
    /// `|seq^l_a|` — the level-`l` presence duration of the first entity.
    pub size_a: usize,
    /// `|seq^l_b|` — the level-`l` presence duration of the second entity.
    pub size_b: usize,
}

/// The per-level overlap summary between two entities, computed from their
/// ST-cell set sequences.  Index 0 corresponds to level 1.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LevelOverlap {
    stats: Vec<LevelStat>,
}

impl LevelOverlap {
    /// Computes the overlap summary of two sequences (which must have the same
    /// number of levels).
    pub fn from_sequences(a: &CellSetSequence, b: &CellSetSequence) -> Self {
        assert_eq!(a.num_levels(), b.num_levels(), "sequences must come from the same sp-index");
        let stats = a
            .iter_levels()
            .zip(b.iter_levels())
            .map(|((_, sa), (_, sb))| LevelStat {
                overlap: sa.intersection_len(sb),
                size_a: sa.len(),
                size_b: sb.len(),
            })
            .collect();
        LevelOverlap { stats }
    }

    /// Builds a summary directly from per-level statistics (used for upper-bound
    /// computations where the "other entity" is artificial).
    pub fn from_stats(stats: Vec<LevelStat>) -> Self {
        LevelOverlap { stats }
    }

    /// Empties the summary while keeping its allocation, so one `LevelOverlap`
    /// can serve as reusable scratch across many candidates in a scan loop.
    pub fn clear(&mut self) {
        self.stats.clear();
    }

    /// Appends the statistics of the next level (levels are pushed in order,
    /// starting at level 1).
    pub fn push(&mut self, stat: LevelStat) {
        self.stats.push(stat);
    }

    /// Number of levels.
    pub fn num_levels(&self) -> usize {
        self.stats.len()
    }

    /// The statistics of one level (1-based).
    pub fn level(&self, level: Level) -> LevelStat {
        self.stats[(level - 1) as usize]
    }

    /// Iterates `(level, stat)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (Level, LevelStat)> + '_ {
        self.stats.iter().enumerate().map(|(i, &s)| ((i + 1) as Level, s))
    }

    /// True when there is no overlap at any level.
    pub fn is_disjoint(&self) -> bool {
        self.stats.iter().all(|s| s.overlap == 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cell::{CellSet, StCell};
    use crate::presence::PresenceInstance;
    use crate::spatial::SpIndexBuilder;

    fn sp2() -> (SpIndex, Vec<SpatialUnitId>) {
        let mut b = SpIndexBuilder::new(2);
        let t0 = b.add_top_unit().unwrap();
        let t1 = b.add_top_unit().unwrap();
        let c0 = b.add_child(t0).unwrap();
        let c1 = b.add_child(t0).unwrap();
        let c2 = b.add_child(t1).unwrap();
        (b.build().unwrap(), vec![c0, c1, c2, t0, t1])
    }

    #[test]
    fn ajpi_requires_temporal_overlap() {
        let (sp, u) = sp2();
        let ta = DigitalTrace::from_instances(vec![PresenceInstance::new(
            EntityId(1),
            u[0],
            Period::new(0, 10).unwrap(),
        )]);
        let tb = DigitalTrace::from_instances(vec![PresenceInstance::new(
            EntityId(2),
            u[0],
            Period::new(20, 30).unwrap(),
        )]);
        let ajpis = enumerate_ajpis(&sp, EntityId(1), &ta, EntityId(2), &tb).unwrap();
        assert!(ajpis.is_empty());
    }

    #[test]
    fn ajpi_level_is_depth_of_common_ancestor() {
        let (sp, u) = sp2();
        // Same base unit → level 2; sibling base units → level 1; different
        // level-1 subtree → no AjPI.
        let ta = DigitalTrace::from_instances(vec![PresenceInstance::new(
            EntityId(1),
            u[0],
            Period::new(0, 10).unwrap(),
        )]);
        for (other_unit, expect_level) in [(u[0], Some(2u8)), (u[1], Some(1u8)), (u[2], None)] {
            let tb = DigitalTrace::from_instances(vec![PresenceInstance::new(
                EntityId(2),
                other_unit,
                Period::new(5, 15).unwrap(),
            )]);
            let ajpis = enumerate_ajpis(&sp, EntityId(1), &ta, EntityId(2), &tb).unwrap();
            match expect_level {
                Some(level) => {
                    assert_eq!(ajpis.len(), 1);
                    assert_eq!(ajpis[0].level, level);
                    assert_eq!(ajpis[0].period, Period::new(5, 10).unwrap());
                }
                None => assert!(ajpis.is_empty()),
            }
        }
    }

    #[test]
    fn ajpi_count_is_bounded_by_product_of_trace_lengths() {
        let (sp, u) = sp2();
        let mk = |e: u64, n: usize| {
            DigitalTrace::from_instances(
                (0..n)
                    .map(|i| {
                        PresenceInstance::new(
                            EntityId(e),
                            u[0],
                            Period::new(i as u64 * 10, i as u64 * 10 + 5).unwrap(),
                        )
                    })
                    .collect(),
            )
        };
        let ta = mk(1, 3);
        let tb = mk(2, 4);
        let ajpis = enumerate_ajpis(&sp, EntityId(1), &ta, EntityId(2), &tb).unwrap();
        assert!(ajpis.len() <= ta.len() * tb.len());
        // Here instances align pairwise on identical periods → exactly 3 overlaps.
        assert_eq!(ajpis.len(), 3);
    }

    #[test]
    fn level_overlap_from_sequences() {
        let (sp, u) = sp2();
        let seq_a = CellSetSequence::from_base_cells(
            &sp,
            &CellSet::from_cells(vec![StCell::new(0, u[0]), StCell::new(1, u[0])]),
        )
        .unwrap();
        let seq_b = CellSetSequence::from_base_cells(
            &sp,
            &CellSet::from_cells(vec![StCell::new(0, u[1]), StCell::new(1, u[0])]),
        )
        .unwrap();
        let ov = LevelOverlap::from_sequences(&seq_a, &seq_b);
        assert_eq!(ov.num_levels(), 2);
        // Base level: only (t=1, u0) is shared.
        assert_eq!(ov.level(2).overlap, 1);
        // Level 1: both entities are under t0 at times 0 and 1 → overlap 2.
        assert_eq!(ov.level(1).overlap, 2);
        assert_eq!(ov.level(2).size_a, 2);
        assert_eq!(ov.level(2).size_b, 2);
        assert!(!ov.is_disjoint());
    }

    #[test]
    fn disjoint_sequences_have_zero_overlap() {
        let (sp, u) = sp2();
        let seq_a =
            CellSetSequence::from_base_cells(&sp, &CellSet::from_cells(vec![StCell::new(0, u[0])]))
                .unwrap();
        let seq_b =
            CellSetSequence::from_base_cells(&sp, &CellSet::from_cells(vec![StCell::new(0, u[2])]))
                .unwrap();
        let ov = LevelOverlap::from_sequences(&seq_a, &seq_b);
        assert!(ov.is_disjoint());
    }

    #[test]
    #[should_panic(expected = "same sp-index")]
    fn mismatched_level_counts_panic() {
        let a = CellSetSequence::from_level_sets(vec![CellSet::new()]);
        let b = CellSetSequence::from_level_sets(vec![CellSet::new(), CellSet::new()]);
        let _ = LevelOverlap::from_sequences(&a, &b);
    }
}
