//! The worked example of Sections 4.1–4.2 (Tables 4.1–4.3, Figure 4.1), exposed
//! as reusable fixtures so that the index crate and the documentation examples
//! can reproduce the paper's numbers exactly.

use crate::cell::{CellSet, CellSetSequence, StCell};
use crate::entity::EntityId;
use crate::spatial::{SpIndex, SpIndexBuilder, SpatialUnitId};
use crate::time::TimeUnit;

/// The spatial units of the example: base units `L1..L4` and their parents
/// `L5 = {L1, L2}`, `L6 = {L3, L4}`.
#[derive(Debug, Clone, Copy)]
pub struct PaperUnits {
    /// Base unit L1 (child of L5).
    pub l1: SpatialUnitId,
    /// Base unit L2 (child of L5).
    pub l2: SpatialUnitId,
    /// Base unit L3 (child of L6).
    pub l3: SpatialUnitId,
    /// Base unit L4 (child of L6).
    pub l4: SpatialUnitId,
    /// Level-1 unit L5.
    pub l5: SpatialUnitId,
    /// Level-1 unit L6.
    pub l6: SpatialUnitId,
}

/// The complete worked example: hierarchy, units, the four entities' ST-cell set
/// sequences (Table 4.2) and the fixed hash table of Table 4.1.
#[derive(Debug, Clone)]
pub struct PaperExample {
    /// The two-level sp-index.
    pub sp: SpIndex,
    /// Named spatial units.
    pub units: PaperUnits,
    /// The four entities in Table 4.2 order: `e_a, e_b, e_c, e_d`.
    pub entities: Vec<(EntityId, CellSetSequence)>,
}

/// Time units `T1` and `T2` of the example.
pub const T1: TimeUnit = 1;
/// Second time unit of the example.
pub const T2: TimeUnit = 2;

impl PaperExample {
    /// Builds the example.
    pub fn build() -> Self {
        let mut b = SpIndexBuilder::new(2);
        let l5 = b.add_top_unit().expect("top unit");
        let l6 = b.add_top_unit().expect("top unit");
        let l1 = b.add_child(l5).expect("child");
        let l2 = b.add_child(l5).expect("child");
        let l3 = b.add_child(l6).expect("child");
        let l4 = b.add_child(l6).expect("child");
        let sp = b.build().expect("example hierarchy is valid");
        let units = PaperUnits { l1, l2, l3, l4, l5, l6 };

        // Table 4.2: the base-level ST-cell sets of the four entities.
        let base_sets = [
            (EntityId(0), vec![StCell::new(T1, l2), StCell::new(T2, l1)]), // e_a
            (EntityId(1), vec![StCell::new(T1, l1), StCell::new(T2, l2)]), // e_b
            (EntityId(2), vec![StCell::new(T1, l3), StCell::new(T2, l1)]), // e_c
            (EntityId(3), vec![StCell::new(T1, l4), StCell::new(T2, l4)]), // e_d
        ];
        let entities = base_sets
            .into_iter()
            .map(|(e, cells)| {
                let seq = CellSetSequence::from_base_cells(&sp, &CellSet::from_cells(cells))
                    .expect("example cells are valid");
                (e, seq)
            })
            .collect();
        PaperExample { sp, units, entities }
    }

    /// The hash value of Table 4.1 for hash function `h` (1 or 2) and a base-level
    /// ST-cell; `None` for cells outside the table.
    pub fn hash_value(&self, h: usize, cell: StCell) -> Option<u32> {
        let u = self.units;
        let col = |unit: SpatialUnitId| -> Option<usize> {
            [u.l1, u.l2, u.l3, u.l4].iter().position(|&x| x == unit)
        };
        let row_h1 = [[2u32, 8], [5, 1], [4, 6], [7, 3]];
        let row_h2 = [[8u32, 3], [6, 5], [4, 1], [2, 7]];
        let t = match cell.time() {
            T1 => 0usize,
            T2 => 1usize,
            _ => return None,
        };
        let c = col(cell.unit())?;
        match h {
            1 => Some(row_h1[c][t]),
            2 => Some(row_h2[c][t]),
            _ => None,
        }
    }

    /// The expected signature table of Table 4.3: for each entity, the level-1 and
    /// level-2 signatures `(sig^1, sig^2)` as `[h1, h2]` pairs.
    ///
    /// One correction with respect to the thesis: Table 4.3 lists `sig^2_d = ⟨3, 7⟩`,
    /// but applying the MinHash definition of Section 4.2.1 to Table 4.1
    /// (`h2(T1L4) = 2`, `h2(T2L4) = 7`) gives `min(2, 7) = 2`, so the faithful
    /// value is `⟨3, 2⟩`.  Every other entry matches the thesis exactly.
    pub fn expected_signatures(&self) -> Vec<(EntityId, [u32; 2], [u32; 2])> {
        vec![
            (EntityId(0), [1, 3], [5, 3]),
            (EntityId(1), [1, 3], [1, 5]),
            (EntityId(2), [1, 2], [4, 3]),
            (EntityId(3), [3, 1], [3, 2]),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adm::{AssociationMeasure, DiceAdm};

    #[test]
    fn example_has_four_entities_with_two_levels() {
        let ex = PaperExample::build();
        assert_eq!(ex.entities.len(), 4);
        for (_, seq) in &ex.entities {
            assert_eq!(seq.num_levels(), 2);
            assert_eq!(seq.base().len(), 2);
        }
    }

    /// Table 4.2: the level-1 projections match the paper's listed sequences.
    #[test]
    fn level_one_sets_match_table_4_2() {
        let ex = PaperExample::build();
        let u = ex.units;
        let expect = [
            vec![StCell::new(T1, u.l5), StCell::new(T2, u.l5)], // e_a
            vec![StCell::new(T1, u.l5), StCell::new(T2, u.l5)], // e_b
            vec![StCell::new(T1, u.l6), StCell::new(T2, u.l5)], // e_c
            vec![StCell::new(T1, u.l6), StCell::new(T2, u.l6)], // e_d
        ];
        for ((_, seq), cells) in ex.entities.iter().zip(expect) {
            assert_eq!(seq.level(1), &CellSet::from_cells(cells));
        }
    }

    /// Table 4.1: spot-check a few hash values and the hierarchical min property
    /// used in Example 4.2.1 (h1(T1L5) = min(h1(T1L1), h1(T1L2)) = 2, etc.).
    #[test]
    fn hash_table_matches_table_4_1() {
        let ex = PaperExample::build();
        let u = ex.units;
        assert_eq!(ex.hash_value(1, StCell::new(T1, u.l1)), Some(2));
        assert_eq!(ex.hash_value(1, StCell::new(T2, u.l1)), Some(8));
        assert_eq!(ex.hash_value(2, StCell::new(T2, u.l3)), Some(1));
        assert_eq!(ex.hash_value(1, StCell::new(T1, u.l5)), None, "only base cells are tabulated");
        assert_eq!(ex.hash_value(3, StCell::new(T1, u.l1)), None);
        // Derived parent-level values used in the worked example.
        let h1_t1l5 = ex
            .hash_value(1, StCell::new(T1, u.l1))
            .unwrap()
            .min(ex.hash_value(1, StCell::new(T1, u.l2)).unwrap());
        assert_eq!(h1_t1l5, 2);
        let h1_t2l5 = ex
            .hash_value(1, StCell::new(T2, u.l1))
            .unwrap()
            .min(ex.hash_value(1, StCell::new(T2, u.l2)).unwrap());
        assert_eq!(h1_t2l5, 1);
    }

    /// The example of Section 5.2 computes deg(e_a, e_c) = 0.15 under the
    /// 0.1/0.9-weighted Dice measure with the convention that the level-1 overlap
    /// counts distinct co-present periods; our set-based counting gives 0.25
    /// (level-1 overlap of 1 — only T2 is shared under L5 — and level-2 overlap of
    /// 1).  Verify the relationships the search relies on: e_a is e_c's closest
    /// entity and the degree is far below the Dice maximum of 0.5.
    #[test]
    fn query_entity_ec_prefers_ea() {
        let ex = PaperExample::build();
        let measure = DiceAdm::paper_example();
        let seq_c = &ex.entities[2].1;
        let mut degrees: Vec<(EntityId, f64)> = ex
            .entities
            .iter()
            .filter(|(e, _)| *e != EntityId(2))
            .map(|(e, seq)| (*e, measure.degree(seq_c, seq)))
            .collect();
        degrees.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap());
        assert_eq!(degrees[0].0, EntityId(0), "e_a is the top-1 answer for query e_c");
        assert!(degrees[0].1 > degrees[1].1);
        assert!(degrees[0].1 <= 0.5);
        // e_d only shares the coarse unit L6 with e_c at time T1, so its degree is
        // the level-1 weight times 1/4.
        let d_cd = measure.degree(seq_c, &ex.entities[3].1);
        assert!((d_cd - 0.025).abs() < 1e-12);
        assert!(d_cd < degrees[0].1);
    }
}
