//! Spatial-temporal cells (ST-cells) and per-level ST-cell set sequences
//! (Sections 3.1 and 4.1 of the paper).
//!
//! An ST-cell is the combination of a base temporal unit and a spatial unit; the
//! base-level ST-cells are the atomic units of presence.  An entity's trace is
//! represented as a *sequence of ST-cell sets*, one set per sp-index level, where
//! the level-`i` set contains the projections of the base-level cells onto level
//! `i` (Example 4.1.1).

use crate::error::Result;
use crate::spatial::{Level, SpIndex, SpatialUnitId};
use crate::time::TimeUnit;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A spatial-temporal cell: one base temporal unit spent in one spatial unit.
///
/// Packed into a single `u64` (time in the high 32 bits) so that sorting by the
/// packed value orders cells time-major, and so that cell sets are cache-friendly
/// flat arrays of `u64`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(transparent)]
pub struct StCell(u64);

impl StCell {
    /// Creates a cell from a time unit and a spatial unit.
    #[inline]
    pub fn new(time: TimeUnit, unit: SpatialUnitId) -> Self {
        StCell(((time as u64) << 32) | unit as u64)
    }

    /// The base temporal unit of this cell.
    #[inline]
    pub fn time(self) -> TimeUnit {
        (self.0 >> 32) as TimeUnit
    }

    /// The spatial unit of this cell.
    #[inline]
    pub fn unit(self) -> SpatialUnitId {
        self.0 as u32
    }

    /// The packed representation (useful as a hashing key).
    #[inline]
    pub fn packed(self) -> u64 {
        self.0
    }

    /// Reconstructs a cell from its packed representation.
    #[inline]
    pub fn from_packed(packed: u64) -> Self {
        StCell(packed)
    }
}

impl fmt::Display for StCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}l{}", self.time(), self.unit())
    }
}

/// A set of ST-cells, stored as a sorted, deduplicated vector.
///
/// Set operations (intersection size, union, difference) are linear merges over
/// the sorted representation, which keeps the hot query path allocation-free and
/// branch-predictable.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellSet {
    cells: Vec<StCell>,
}

impl CellSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        CellSet { cells: Vec::new() }
    }

    /// Creates a set from an arbitrary iterator of cells (sorts and deduplicates).
    pub fn from_cells<I: IntoIterator<Item = StCell>>(iter: I) -> Self {
        let mut cells: Vec<StCell> = iter.into_iter().collect();
        cells.sort_unstable();
        cells.dedup();
        CellSet { cells }
    }

    /// Creates a set from a vector that is already sorted and deduplicated.
    ///
    /// Debug builds assert the precondition.
    pub fn from_sorted_unique(cells: Vec<StCell>) -> Self {
        debug_assert!(cells.windows(2).all(|w| w[0] < w[1]), "cells must be sorted and unique");
        CellSet { cells }
    }

    /// Number of cells in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// True when the set has no cells.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Iterates the cells in ascending packed order.
    pub fn iter(&self) -> impl Iterator<Item = StCell> + '_ {
        self.cells.iter().copied()
    }

    /// Read-only view of the underlying sorted slice.
    #[inline]
    pub fn as_slice(&self) -> &[StCell] {
        &self.cells
    }

    /// Read-only view of the sorted cells as their packed `u64` values, in the
    /// same (ascending) order as [`as_slice`](CellSet::as_slice).
    ///
    /// This is the hot-path representation consumed by the [`crate::kernel`]
    /// intersection kernels and by the flat candidate arena in the index crate.
    #[inline]
    pub fn packed_slice(&self) -> &[u64] {
        // SAFETY: `StCell` is `#[repr(transparent)]` over `u64`, so a slice of
        // cells has exactly the layout of a slice of their packed values, and
        // the packed ordering equals the derived `Ord` on `StCell`.
        unsafe { std::slice::from_raw_parts(self.cells.as_ptr().cast::<u64>(), self.cells.len()) }
    }

    /// Membership test (binary search).
    pub fn contains(&self, cell: StCell) -> bool {
        self.cells.binary_search(&cell).is_ok()
    }

    /// Inserts a cell, keeping the sorted-unique invariant. Returns true when the
    /// cell was not already present.
    pub fn insert(&mut self, cell: StCell) -> bool {
        match self.cells.binary_search(&cell) {
            Ok(_) => false,
            Err(pos) => {
                self.cells.insert(pos, cell);
                true
            }
        }
    }

    /// Inserts a batch of cells, restoring the sorted-unique invariant with a
    /// single sort + dedup pass — `O((n + k) log (n + k))` instead of the
    /// `O(n · k)` of `k` repeated [`insert`](CellSet::insert) shifts.
    pub fn extend_cells<I: IntoIterator<Item = StCell>>(&mut self, iter: I) {
        let old_len = self.cells.len();
        self.cells.extend(iter);
        if self.cells.len() > old_len {
            self.cells.sort_unstable();
            self.cells.dedup();
        }
    }

    /// Size of the intersection with another set.
    ///
    /// Dispatches between a branch-light linear merge and a galloping search
    /// depending on the size skew; see [`crate::kernel::intersection_len`].
    #[inline]
    pub fn intersection_len(&self, other: &CellSet) -> usize {
        crate::kernel::intersection_len(self.packed_slice(), other.packed_slice())
    }

    /// The intersection with another set.
    pub fn intersection(&self, other: &CellSet) -> CellSet {
        let (mut i, mut j) = (0usize, 0usize);
        let mut out = Vec::with_capacity(self.len().min(other.len()));
        let (a, b) = (&self.cells, &other.cells);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        CellSet { cells: out }
    }

    /// The union with another set.
    pub fn union(&self, other: &CellSet) -> CellSet {
        let mut out = Vec::with_capacity(self.len() + other.len());
        let (mut i, mut j) = (0usize, 0usize);
        let (a, b) = (&self.cells, &other.cells);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        CellSet { cells: out }
    }

    /// Cells of `self` that are not in `other`.
    pub fn difference(&self, other: &CellSet) -> CellSet {
        let mut out = Vec::with_capacity(self.len());
        let (mut i, mut j) = (0usize, 0usize);
        let (a, b) = (&self.cells, &other.cells);
        while i < a.len() {
            if j >= b.len() || a[i] < b[j] {
                out.push(a[i]);
                i += 1;
            } else if a[i] > b[j] {
                j += 1;
            } else {
                i += 1;
                j += 1;
            }
        }
        CellSet { cells: out }
    }

    /// True when every cell of `self` is also in `other`.
    pub fn is_subset_of(&self, other: &CellSet) -> bool {
        self.intersection_len(other) == self.len()
    }
}

impl FromIterator<StCell> for CellSet {
    fn from_iter<I: IntoIterator<Item = StCell>>(iter: I) -> Self {
        CellSet::from_cells(iter)
    }
}

impl Extend<StCell> for CellSet {
    fn extend<I: IntoIterator<Item = StCell>>(&mut self, iter: I) {
        self.extend_cells(iter);
    }
}

impl<'a> IntoIterator for &'a CellSet {
    type Item = StCell;
    type IntoIter = std::iter::Copied<std::slice::Iter<'a, StCell>>;

    fn into_iter(self) -> Self::IntoIter {
        self.cells.iter().copied()
    }
}

/// The per-level ST-cell set sequence `seq_a` of an entity (Section 4.1).
///
/// `sets[i - 1]` is `seq_a^i`, the set of level-`i` ST-cells.  The sequence is
/// built from the base-level cells by projecting every cell's spatial unit to each
/// ancestor level, exactly as in Example 4.1.1.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellSetSequence {
    sets: Vec<CellSet>,
}

impl CellSetSequence {
    /// Builds the sequence from the base-level cells of an entity.
    pub fn from_base_cells(sp: &SpIndex, base_cells: &CellSet) -> Result<Self> {
        let m = sp.height() as usize;
        let mut sets: Vec<Vec<StCell>> = vec![Vec::new(); m];
        for cell in base_cells.iter() {
            for level in 1..=m as Level {
                let ancestor = sp.ancestor_at_level(cell.unit(), level)?;
                sets[(level - 1) as usize].push(StCell::new(cell.time(), ancestor));
            }
        }
        Ok(CellSetSequence { sets: sets.into_iter().map(CellSet::from_cells).collect() })
    }

    /// Builds a sequence directly from per-level sets (used by tests reproducing
    /// the paper's worked example).
    pub fn from_level_sets(sets: Vec<CellSet>) -> Self {
        CellSetSequence { sets }
    }

    /// Number of levels (`m`).
    #[inline]
    pub fn num_levels(&self) -> usize {
        self.sets.len()
    }

    /// The set at a given level (1-based, as in the paper).
    pub fn level(&self, level: Level) -> &CellSet {
        &self.sets[(level - 1) as usize]
    }

    /// The base-level set `seq^m` (all ST-cells the entity is present in).
    pub fn base(&self) -> &CellSet {
        self.sets.last().expect("sequence has at least one level")
    }

    /// Iterates `(level, set)` pairs from level 1 to level m.
    pub fn iter_levels(&self) -> impl Iterator<Item = (Level, &CellSet)> {
        self.sets.iter().enumerate().map(|(i, s)| ((i + 1) as Level, s))
    }

    /// Total number of cells across all levels (a measure of representation size).
    pub fn total_cells(&self) -> usize {
        self.sets.iter().map(CellSet::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spatial::SpIndexBuilder;

    fn cell(t: TimeUnit, u: SpatialUnitId) -> StCell {
        StCell::new(t, u)
    }

    #[test]
    fn packing_round_trips() {
        let c = cell(0xDEAD, 0xBEEF);
        assert_eq!(c.time(), 0xDEAD);
        assert_eq!(c.unit(), 0xBEEF);
        assert_eq!(StCell::from_packed(c.packed()), c);
        assert_eq!(c.to_string(), format!("t{}l{}", 0xDEAD, 0xBEEF));
    }

    #[test]
    fn ordering_is_time_major() {
        assert!(cell(1, 100) < cell(2, 0));
        assert!(cell(1, 1) < cell(1, 2));
    }

    #[test]
    fn from_cells_sorts_and_dedups() {
        let s = CellSet::from_cells(vec![cell(2, 1), cell(1, 1), cell(2, 1), cell(1, 3)]);
        assert_eq!(s.len(), 3);
        let v: Vec<StCell> = s.iter().collect();
        assert_eq!(v, vec![cell(1, 1), cell(1, 3), cell(2, 1)]);
    }

    #[test]
    fn insert_maintains_invariants() {
        let mut s = CellSet::new();
        assert!(s.insert(cell(3, 3)));
        assert!(s.insert(cell(1, 1)));
        assert!(!s.insert(cell(3, 3)));
        assert_eq!(s.len(), 2);
        assert!(s.contains(cell(1, 1)));
        assert!(!s.contains(cell(2, 2)));
    }

    #[test]
    fn extend_cells_batch_matches_repeated_insert() {
        let mut batched = CellSet::from_cells(vec![cell(1, 1), cell(5, 5)]);
        let mut one_by_one = batched.clone();
        let incoming = vec![cell(3, 3), cell(1, 1), cell(0, 9), cell(3, 3)];
        batched.extend_cells(incoming.iter().copied());
        for c in incoming {
            one_by_one.insert(c);
        }
        assert_eq!(batched, one_by_one);
        assert_eq!(batched.len(), 4);
        // Empty batch is a no-op.
        let before = batched.clone();
        batched.extend_cells(std::iter::empty());
        assert_eq!(batched, before);
    }

    #[test]
    fn packed_slice_mirrors_cells_in_order() {
        let s = CellSet::from_cells(vec![cell(2, 1), cell(1, 7), cell(1, 3)]);
        let packed = s.packed_slice();
        assert_eq!(packed.len(), s.len());
        for (c, &p) in s.iter().zip(packed) {
            assert_eq!(c.packed(), p);
        }
        assert!(packed.windows(2).all(|w| w[0] < w[1]));
        assert!(CellSet::new().packed_slice().is_empty());
    }

    #[test]
    fn set_algebra() {
        let a = CellSet::from_cells(vec![cell(1, 1), cell(1, 2), cell(2, 1)]);
        let b = CellSet::from_cells(vec![cell(1, 2), cell(2, 1), cell(3, 5)]);
        assert_eq!(a.intersection_len(&b), 2);
        assert_eq!(a.intersection(&b).len(), 2);
        assert_eq!(a.union(&b).len(), 4);
        assert_eq!(a.difference(&b).len(), 1);
        assert_eq!(b.difference(&a).len(), 1);
        assert!(a.intersection(&b).is_subset_of(&a));
        assert!(a.intersection(&b).is_subset_of(&b));
        assert!(!a.is_subset_of(&b));
    }

    #[test]
    fn empty_set_algebra_edge_cases() {
        let a = CellSet::new();
        let b = CellSet::from_cells(vec![cell(1, 1)]);
        assert_eq!(a.intersection_len(&b), 0);
        assert_eq!(a.union(&b).len(), 1);
        assert_eq!(a.difference(&b).len(), 0);
        assert!(a.is_subset_of(&b));
        assert!(a.is_subset_of(&a));
        assert!(a.is_empty());
    }

    /// Example 4.1.1 from the paper: entity present at L3 at time T1 and L1 at
    /// time T2 has seq^2 = {T1L3, T2L1}, seq^1 = {T1L6, T2L5}.
    #[test]
    fn paper_example_4_1_1_projection() {
        let mut b = SpIndexBuilder::new(2);
        let l5 = b.add_top_unit().unwrap();
        let l6 = b.add_top_unit().unwrap();
        let l1 = b.add_child(l5).unwrap();
        let _l2 = b.add_child(l5).unwrap();
        let l3 = b.add_child(l6).unwrap();
        let _l4 = b.add_child(l6).unwrap();
        let sp = b.build().unwrap();

        let base = CellSet::from_cells(vec![cell(1, l3), cell(2, l1)]);
        let seq = CellSetSequence::from_base_cells(&sp, &base).unwrap();
        assert_eq!(seq.num_levels(), 2);
        assert_eq!(seq.level(2), &base);
        let expected_l1 = CellSet::from_cells(vec![cell(1, l6), cell(2, l5)]);
        assert_eq!(seq.level(1), &expected_l1);
        assert_eq!(seq.base(), &base);
        assert_eq!(seq.total_cells(), 4);
    }

    #[test]
    fn projection_merges_siblings_into_one_parent_cell() {
        // Two different children of the same parent at the same time collapse into
        // a single parent-level cell.
        let mut b = SpIndexBuilder::new(2);
        let top = b.add_top_unit().unwrap();
        let c1 = b.add_child(top).unwrap();
        let c2 = b.add_child(top).unwrap();
        let sp = b.build().unwrap();
        let base = CellSet::from_cells(vec![cell(5, c1), cell(5, c2)]);
        let seq = CellSetSequence::from_base_cells(&sp, &base).unwrap();
        assert_eq!(seq.level(2).len(), 2);
        assert_eq!(seq.level(1).len(), 1);
    }

    #[test]
    fn iter_levels_is_one_based_and_ordered() {
        let sp = SpIndex::uniform(2, &[2, 2]).unwrap();
        let base_unit = sp.base_units()[0];
        let base = CellSet::from_cells(vec![cell(0, base_unit)]);
        let seq = CellSetSequence::from_base_cells(&sp, &base).unwrap();
        let levels: Vec<Level> = seq.iter_levels().map(|(l, _)| l).collect();
        assert_eq!(levels, vec![1, 2, 3]);
    }
}
