//! # trace-model
//!
//! The data model underlying *Top-k Queries over Digital Traces* (Li, Yu, Koudas;
//! SIGMOD 2019).  A *digital trace* is the set of presence instances of an entity:
//! tuples `<entity, location, time period>` where locations live in a spatial
//! hierarchy (the *sp-index*) and timestamps are discretised into base temporal
//! units.
//!
//! This crate provides:
//!
//! * [`SpIndex`] — the spatial hierarchy (Section 3.1 of the paper), an arena tree
//!   with levels `1..=m` where level `m` holds the *base spatial units*;
//! * [`StCell`] — a spatial-temporal cell, the atomic unit of presence;
//! * [`PresenceInstance`] / [`DigitalTrace`] / [`TraceSet`] — entity traces
//!   (Definitions 1–2);
//! * [`CellSetSequence`] — the per-level ST-cell set representation of Section 4.1;
//! * [`ajpi`] — adjoint presence instances (Definition 3) and per-level overlap
//!   statistics;
//! * [`adm`] — the generic association-degree-measure family of Section 3.2 with
//!   the paper's extensible measure (Equation 7.1), Dice, Jaccard and a weighted
//!   per-level measure.
//!
//! Everything here is deliberately independent of indexing: the brute-force
//! evaluation of a top-k query needs only this crate, and the MinSigTree index in
//! the `minsig` crate is verified against it.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod adm;
pub mod ajpi;
pub mod cell;
pub mod entity;
pub mod error;
pub mod examples;
pub mod kernel;
pub mod presence;
pub mod spatial;
pub mod time;
pub mod traces;

pub use adm::{AssociationMeasure, DiceAdm, JaccardAdm, PaperAdm, WeightedLevelAdm};
pub use ajpi::{AdjointPresence, LevelOverlap};
pub use cell::{CellSet, CellSetSequence, StCell};
pub use entity::EntityId;
pub use error::{ModelError, Result};
pub use presence::{DigitalTrace, PresenceInstance};
pub use spatial::{Level, SpIndex, SpIndexBuilder, SpatialUnitId};
pub use time::{Period, TimeUnit};
pub use traces::TraceSet;
