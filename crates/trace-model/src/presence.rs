//! Presence instances and digital traces (Definitions 1 and 2).

use crate::cell::{CellSet, CellSetSequence, StCell};
use crate::entity::EntityId;
use crate::error::Result;
use crate::spatial::{Level, SpIndex, SpatialUnitId};
use crate::time::Period;
use serde::{Deserialize, Serialize};

/// A presence instance (Definition 1): one entity present at one spatial unit for
/// one continuous time period.
///
/// The paper's `path` and `level` attributes are derivable from the spatial unit
/// and the sp-index, so only the unit is stored; `tid` (the sp-index id) is
/// implicit because a multi-tree deployment is modelled as one sp-index with
/// several level-1 units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PresenceInstance {
    /// The entity this presence belongs to.
    pub entity: EntityId,
    /// The spatial unit of the presence (usually a base spatial unit).
    pub unit: SpatialUnitId,
    /// The time period `[start, end)` of the presence, in raw ticks.
    pub period: Period,
}

impl PresenceInstance {
    /// Creates a presence instance.
    pub fn new(entity: EntityId, unit: SpatialUnitId, period: Period) -> Self {
        PresenceInstance { entity, unit, period }
    }

    /// The level of this presence in the sp-index.
    pub fn level(&self, sp: &SpIndex) -> Result<Level> {
        sp.level(self.unit)
    }

    /// The root-to-unit path of this presence (`path` in Definition 1).
    pub fn path(&self, sp: &SpIndex) -> Result<Vec<SpatialUnitId>> {
        sp.path(self.unit)
    }
}

/// The digital trace of one entity: its set of presence instances (Definition 2).
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct DigitalTrace {
    instances: Vec<PresenceInstance>,
}

impl DigitalTrace {
    /// Creates an empty trace.
    pub fn new() -> Self {
        DigitalTrace { instances: Vec::new() }
    }

    /// Creates a trace from a list of presence instances.
    pub fn from_instances(instances: Vec<PresenceInstance>) -> Self {
        DigitalTrace { instances }
    }

    /// Adds a presence instance.
    pub fn push(&mut self, pi: PresenceInstance) {
        self.instances.push(pi);
    }

    /// Number of presence instances (`|P_a|`).
    #[inline]
    pub fn len(&self) -> usize {
        self.instances.len()
    }

    /// True when the trace has no presence instances.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.instances.is_empty()
    }

    /// Read-only access to the presence instances.
    #[inline]
    pub fn instances(&self) -> &[PresenceInstance] {
        &self.instances
    }

    /// Total presence duration in raw ticks.
    pub fn total_duration(&self) -> u64 {
        self.instances.iter().map(|pi| pi.period.length()).sum()
    }

    /// The base-level ST-cells of this trace: every presence instance is split
    /// into the base temporal units it covers, keyed by the instance's spatial
    /// unit (which must be a base unit for the cell to be a true base ST-cell).
    pub fn base_cells(&self, sp: &SpIndex, ticks_per_unit: u64) -> Result<CellSet> {
        let mut cells = Vec::new();
        for pi in &self.instances {
            // Presences recorded at coarser units are projected "down" by simply
            // keeping the coarse unit: they only contribute to the levels at or
            // above their own level.  The common case — and the only one the
            // synthetic generators produce — is base-level presences.
            let _ = sp.level(pi.unit)?;
            for t in pi.period.units(ticks_per_unit) {
                cells.push(StCell::new(t, pi.unit));
            }
        }
        Ok(CellSet::from_cells(cells))
    }

    /// The per-level ST-cell set sequence of this trace (Section 4.1).
    pub fn cell_sequence(&self, sp: &SpIndex, ticks_per_unit: u64) -> Result<CellSetSequence> {
        let base = self.base_cells(sp, ticks_per_unit)?;
        CellSetSequence::from_base_cells(sp, &base)
    }
}

impl FromIterator<PresenceInstance> for DigitalTrace {
    fn from_iter<I: IntoIterator<Item = PresenceInstance>>(iter: I) -> Self {
        DigitalTrace { instances: iter.into_iter().collect() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spatial::SpIndexBuilder;

    fn two_level_sp() -> (SpIndex, Vec<SpatialUnitId>) {
        let mut b = SpIndexBuilder::new(2);
        let t0 = b.add_top_unit().unwrap();
        let t1 = b.add_top_unit().unwrap();
        let c0 = b.add_child(t0).unwrap();
        let c1 = b.add_child(t0).unwrap();
        let c2 = b.add_child(t1).unwrap();
        let c3 = b.add_child(t1).unwrap();
        (b.build().unwrap(), vec![c0, c1, c2, c3, t0, t1])
    }

    #[test]
    fn presence_instance_level_and_path() {
        let (sp, ids) = two_level_sp();
        let pi = PresenceInstance::new(EntityId(1), ids[0], Period::new(0, 10).unwrap());
        assert_eq!(pi.level(&sp).unwrap(), 2);
        let path = pi.path(&sp).unwrap();
        assert_eq!(path.len(), 2);
        assert_eq!(path[1], ids[0]);
    }

    #[test]
    fn trace_accumulates_instances_and_duration() {
        let (_sp, ids) = two_level_sp();
        let mut trace = DigitalTrace::new();
        assert!(trace.is_empty());
        trace.push(PresenceInstance::new(EntityId(1), ids[0], Period::new(0, 60).unwrap()));
        trace.push(PresenceInstance::new(EntityId(1), ids[1], Period::new(100, 160).unwrap()));
        assert_eq!(trace.len(), 2);
        assert_eq!(trace.total_duration(), 120);
    }

    #[test]
    fn base_cells_discretise_periods() {
        let (sp, ids) = two_level_sp();
        let trace = DigitalTrace::from_instances(vec![
            // Spans units 0 and 1 with ticks_per_unit = 60.
            PresenceInstance::new(EntityId(1), ids[0], Period::new(30, 90).unwrap()),
            // Exactly unit 2.
            PresenceInstance::new(EntityId(1), ids[2], Period::new(120, 180).unwrap()),
        ]);
        let cells = trace.base_cells(&sp, 60).unwrap();
        assert_eq!(cells.len(), 3);
        assert!(cells.contains(StCell::new(0, ids[0])));
        assert!(cells.contains(StCell::new(1, ids[0])));
        assert!(cells.contains(StCell::new(2, ids[2])));
    }

    #[test]
    fn overlapping_instances_at_same_place_dedupe() {
        let (sp, ids) = two_level_sp();
        let trace = DigitalTrace::from_instances(vec![
            PresenceInstance::new(EntityId(1), ids[0], Period::new(0, 60).unwrap()),
            PresenceInstance::new(EntityId(1), ids[0], Period::new(30, 60).unwrap()),
        ]);
        let cells = trace.base_cells(&sp, 60).unwrap();
        assert_eq!(cells.len(), 1);
    }

    #[test]
    fn cell_sequence_projects_to_parent_level() {
        let (sp, ids) = two_level_sp();
        let trace = DigitalTrace::from_instances(vec![
            PresenceInstance::new(EntityId(1), ids[0], Period::new(0, 60).unwrap()),
            PresenceInstance::new(EntityId(1), ids[1], Period::new(0, 60).unwrap()),
        ]);
        let seq = trace.cell_sequence(&sp, 60).unwrap();
        assert_eq!(seq.level(2).len(), 2);
        // Both base units share the same parent, same time unit → one level-1 cell.
        assert_eq!(seq.level(1).len(), 1);
    }

    #[test]
    fn empty_trace_produces_empty_sequence() {
        let (sp, _) = two_level_sp();
        let trace = DigitalTrace::new();
        let seq = trace.cell_sequence(&sp, 60).unwrap();
        assert_eq!(seq.num_levels(), 2);
        assert!(seq.base().is_empty());
        assert!(seq.level(1).is_empty());
    }

    #[test]
    fn unknown_unit_is_an_error() {
        let (sp, _) = two_level_sp();
        let trace = DigitalTrace::from_instances(vec![PresenceInstance::new(
            EntityId(1),
            999,
            Period::new(0, 10).unwrap(),
        )]);
        assert!(trace.base_cells(&sp, 60).is_err());
    }
}
