//! The collection of all entities' digital traces.

use crate::cell::CellSetSequence;
use crate::entity::EntityId;
use crate::error::{ModelError, Result};
use crate::presence::{DigitalTrace, PresenceInstance};
use crate::spatial::SpIndex;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// All digital traces of a dataset, keyed by entity, together with the temporal
/// discretisation used to turn presence periods into ST-cells.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TraceSet {
    ticks_per_unit: u64,
    traces: BTreeMap<EntityId, DigitalTrace>,
}

impl TraceSet {
    /// Creates an empty trace set with the given temporal discretisation
    /// (`ticks_per_unit` raw ticks form one base temporal unit).
    pub fn new(ticks_per_unit: u64) -> Self {
        assert!(ticks_per_unit > 0, "ticks_per_unit must be positive");
        TraceSet { ticks_per_unit, traces: BTreeMap::new() }
    }

    /// The number of raw ticks per base temporal unit.
    #[inline]
    pub fn ticks_per_unit(&self) -> u64 {
        self.ticks_per_unit
    }

    /// Number of entities with at least one presence instance.
    #[inline]
    pub fn num_entities(&self) -> usize {
        self.traces.len()
    }

    /// Total number of presence instances in the dataset.
    pub fn total_presence_instances(&self) -> usize {
        self.traces.values().map(DigitalTrace::len).sum()
    }

    /// True when no entity has been recorded.
    pub fn is_empty(&self) -> bool {
        self.traces.is_empty()
    }

    /// Iterates entity ids in ascending order.
    pub fn entities(&self) -> impl Iterator<Item = EntityId> + '_ {
        self.traces.keys().copied()
    }

    /// Iterates `(entity, trace)` pairs in ascending entity order.
    pub fn iter(&self) -> impl Iterator<Item = (EntityId, &DigitalTrace)> {
        self.traces.iter().map(|(&e, t)| (e, t))
    }

    /// The trace of an entity, or an error when unknown.
    pub fn trace(&self, entity: EntityId) -> Result<&DigitalTrace> {
        self.traces.get(&entity).ok_or(ModelError::UnknownEntity(entity.raw()))
    }

    /// The trace of an entity, or `None` when unknown.
    pub fn get(&self, entity: EntityId) -> Option<&DigitalTrace> {
        self.traces.get(&entity)
    }

    /// True when the entity has a trace.
    pub fn contains(&self, entity: EntityId) -> bool {
        self.traces.contains_key(&entity)
    }

    /// Records a presence instance, creating the entity's trace when needed.
    pub fn record(&mut self, pi: PresenceInstance) {
        self.traces.entry(pi.entity).or_default().push(pi);
    }

    /// Inserts (or replaces) the complete trace of an entity, returning the
    /// previous trace when one existed.
    pub fn insert_trace(&mut self, entity: EntityId, trace: DigitalTrace) -> Option<DigitalTrace> {
        self.traces.insert(entity, trace)
    }

    /// Removes an entity's trace.
    pub fn remove(&mut self, entity: EntityId) -> Option<DigitalTrace> {
        self.traces.remove(&entity)
    }

    /// The per-level ST-cell set sequence of one entity.
    pub fn cell_sequence(&self, sp: &SpIndex, entity: EntityId) -> Result<CellSetSequence> {
        self.trace(entity)?.cell_sequence(sp, self.ticks_per_unit)
    }

    /// Materialises the ST-cell set sequences of every entity.
    ///
    /// This is the "organise the data by entity" step of Section 4.1; index
    /// builders consume the result.
    pub fn cell_sequences(&self, sp: &SpIndex) -> Result<BTreeMap<EntityId, CellSetSequence>> {
        let mut out = BTreeMap::new();
        for (&entity, trace) in &self.traces {
            out.insert(entity, trace.cell_sequence(sp, self.ticks_per_unit)?);
        }
        Ok(out)
    }

    /// Average number of base ST-cells per entity (`C` in the cost analysis of
    /// Section 4.3).
    pub fn mean_cells_per_entity(&self, sp: &SpIndex) -> Result<f64> {
        if self.traces.is_empty() {
            return Ok(0.0);
        }
        let mut total = 0usize;
        for trace in self.traces.values() {
            total += trace.base_cells(sp, self.ticks_per_unit)?.len();
        }
        Ok(total as f64 / self.traces.len() as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spatial::SpIndex;
    use crate::time::Period;

    fn sample() -> (SpIndex, TraceSet) {
        let sp = SpIndex::uniform(2, &[2]).unwrap();
        let base = sp.base_units().to_vec();
        let mut ts = TraceSet::new(60);
        ts.record(PresenceInstance::new(EntityId(1), base[0], Period::new(0, 120).unwrap()));
        ts.record(PresenceInstance::new(EntityId(1), base[1], Period::new(240, 300).unwrap()));
        ts.record(PresenceInstance::new(EntityId(2), base[0], Period::new(0, 60).unwrap()));
        (sp, ts)
    }

    #[test]
    fn record_and_lookup() {
        let (_sp, ts) = sample();
        assert_eq!(ts.num_entities(), 2);
        assert_eq!(ts.total_presence_instances(), 3);
        assert!(ts.contains(EntityId(1)));
        assert!(!ts.contains(EntityId(3)));
        assert_eq!(ts.trace(EntityId(1)).unwrap().len(), 2);
        assert!(matches!(ts.trace(EntityId(3)), Err(ModelError::UnknownEntity(3))));
    }

    #[test]
    fn entities_are_sorted() {
        let (_sp, mut ts) = sample();
        ts.record(PresenceInstance::new(EntityId(0), 0, Period::new(0, 1).unwrap()));
        let ids: Vec<u64> = ts.entities().map(|e| e.raw()).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn cell_sequences_cover_all_entities() {
        let (sp, ts) = sample();
        let seqs = ts.cell_sequences(&sp).unwrap();
        assert_eq!(seqs.len(), 2);
        assert_eq!(seqs[&EntityId(1)].base().len(), 3);
        assert_eq!(seqs[&EntityId(2)].base().len(), 1);
    }

    #[test]
    fn mean_cells_per_entity_matches_hand_count() {
        let (sp, ts) = sample();
        let mean = ts.mean_cells_per_entity(&sp).unwrap();
        assert!((mean - 2.0).abs() < 1e-9);
        let empty = TraceSet::new(60);
        assert_eq!(empty.mean_cells_per_entity(&sp).unwrap(), 0.0);
    }

    #[test]
    fn insert_and_remove_traces() {
        let (_sp, mut ts) = sample();
        let removed = ts.remove(EntityId(2)).unwrap();
        assert_eq!(removed.len(), 1);
        assert_eq!(ts.num_entities(), 1);
        assert!(ts.insert_trace(EntityId(2), removed).is_none());
        assert_eq!(ts.num_entities(), 2);
    }
}
