//! Weighted per-level Jaccard similarity.

use super::{jaccard_ratio, AssociationMeasure};
use crate::ajpi::LevelOverlap;
use crate::error::{ModelError, Result};
use serde::{Deserialize, Serialize};

/// A Jaccard-style measure: `deg = Σ_l w_l · |seq^l_a ∩ seq^l_b| / |seq^l_a ∪ seq^l_b|`.
///
/// Included because the paper motivates `deg` as a generalisation of a family of
/// set-similarity functions that contains Jaccard, and because MinHash was
/// originally designed for Jaccard similarity — this measure lets the experiments
/// confirm the index behaves the same way under it.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct JaccardAdm {
    weights: Vec<f64>,
    name: String,
}

impl JaccardAdm {
    /// Creates the measure from explicit per-level weights (index 0 = level 1).
    pub fn new(weights: Vec<f64>) -> Result<Self> {
        if weights.is_empty() {
            return Err(ModelError::InvalidMeasureParameter("weights must not be empty".into()));
        }
        if weights.iter().any(|&w| w < 0.0 || !w.is_finite()) {
            return Err(ModelError::InvalidMeasureParameter(
                "weights must be finite and non-negative".into(),
            ));
        }
        let sum: f64 = weights.iter().sum();
        if sum > 1.0 + 1e-9 {
            return Err(ModelError::InvalidMeasureParameter(format!(
                "weights must sum to at most 1 (got {sum})"
            )));
        }
        let name = format!("jaccard-adm({} levels)", weights.len());
        Ok(JaccardAdm { weights, name })
    }

    /// Uniform weights `1/m` over `m` levels.
    pub fn uniform(num_levels: usize) -> Self {
        JaccardAdm::new(vec![1.0 / num_levels as f64; num_levels])
            .expect("uniform weights are always valid")
    }

    /// The per-level weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl AssociationMeasure for JaccardAdm {
    fn name(&self) -> &str {
        &self.name
    }

    fn degree_from_overlap(&self, overlap: &LevelOverlap) -> f64 {
        debug_assert_eq!(overlap.num_levels(), self.weights.len());
        overlap
            .iter()
            .map(|(level, stat)| self.weights[(level - 1) as usize] * jaccard_ratio(stat))
            .sum::<f64>()
            .clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adm::test_support::{check_axioms, fixtures};
    use crate::ajpi::LevelStat;

    #[test]
    fn construction_validates_weights() {
        assert!(JaccardAdm::new(vec![]).is_err());
        assert!(JaccardAdm::new(vec![2.0]).is_err());
        assert!(JaccardAdm::new(vec![0.5, 0.5]).is_ok());
    }

    #[test]
    fn satisfies_section_3_2_axioms() {
        check_axioms(&JaccardAdm::uniform(2));
    }

    #[test]
    fn identical_entities_score_the_weight_sum() {
        let (_sp, a, _b, _c) = fixtures();
        let m = JaccardAdm::uniform(2);
        assert!((m.degree(&a, &a) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn jaccard_exceeds_dice_on_the_same_overlap() {
        // For a non-trivial overlap, |union| <= |a| + |b|, so Jaccard >= Dice.
        let stats = vec![LevelStat { overlap: 2, size_a: 4, size_b: 3 }];
        let ov = LevelOverlap::from_stats(stats);
        let j = JaccardAdm::uniform(1).degree_from_overlap(&ov);
        let d = super::super::DiceAdm::uniform(1).degree_from_overlap(&ov);
        assert!(j > d);
    }

    #[test]
    fn disjoint_entities_score_zero() {
        let m = JaccardAdm::uniform(2);
        let ov = LevelOverlap::from_stats(vec![LevelStat { overlap: 0, size_a: 3, size_b: 9 }; 2]);
        assert_eq!(m.degree_from_overlap(&ov), 0.0);
    }
}
