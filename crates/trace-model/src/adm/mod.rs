//! Association degree measures (ADMs) — the generic scoring-function family of
//! Section 3.2 and the concrete measures used in the paper's experiments.
//!
//! An ADM maps the per-level overlap between two entities' digital traces to a
//! score in `[0, 1]`.  The family is constrained by three axioms:
//!
//! 1. **Normalisation** — `deg ∈ [0, 1]`;
//! 2. **Monotonicity** — growing the overlap (or shrinking the other entity's
//!    trace) never decreases the score;
//! 3. **Total order** — finer-level and longer co-occurrences score at least as
//!    high as coarser/shorter ones.
//!
//! All measures here are functions of the [`LevelOverlap`] summary: per level
//! `l`, the shared duration `|P^l_ab|` and the two entities' level-`l` durations.
//! That is exactly the information Equation 7.1 consumes, and it is what the
//! MinSigTree upper bounds constrain.

mod dice;
mod jaccard;
mod paper;
mod weighted;

pub use dice::DiceAdm;
pub use jaccard::JaccardAdm;
pub use paper::PaperAdm;
pub use weighted::{LevelRatio, WeightedLevelAdm};

use crate::ajpi::{LevelOverlap, LevelStat};
use crate::cell::CellSetSequence;

/// A member of the generic association-degree-measure family of Section 3.2.
///
/// Implementations must be monotone in the per-level overlap and antitone in the
/// other entity's per-level sizes; given that, the default
/// [`upper_bound`](AssociationMeasure::upper_bound) is sound (it evaluates the
/// measure on the most favourable entity compatible with the per-level overlap
/// caps, i.e. Theorem 4's artificial entity generalised to per-level caps).
pub trait AssociationMeasure: Send + Sync {
    /// A short human-readable name used in experiment output.
    fn name(&self) -> &str;

    /// The association degree from a per-level overlap summary.
    fn degree_from_overlap(&self, overlap: &LevelOverlap) -> f64;

    /// The association degree between two entities given their ST-cell set
    /// sequences.
    fn degree(&self, a: &CellSetSequence, b: &CellSetSequence) -> f64 {
        self.degree_from_overlap(&LevelOverlap::from_sequences(a, b))
    }

    /// An upper bound on the degree achievable by *any* entity whose level-`l`
    /// overlap with the query is at most `overlap_caps[l-1]`, where
    /// `query_sizes[l-1]` is the query's level-`l` duration.
    ///
    /// The default implementation instantiates the artificial entity of
    /// Theorem 4: overlap equal to the cap and own size equal to the cap (the
    /// smallest size compatible with that overlap), which maximises every
    /// monotone measure in this family.
    fn upper_bound(&self, query_sizes: &[usize], overlap_caps: &[usize]) -> f64 {
        debug_assert_eq!(query_sizes.len(), overlap_caps.len());
        let stats = query_sizes
            .iter()
            .zip(overlap_caps.iter())
            .map(|(&q, &cap)| {
                let o = cap.min(q);
                LevelStat { overlap: o, size_a: q, size_b: o }
            })
            .collect();
        self.degree_from_overlap(&LevelOverlap::from_stats(stats))
    }
}

/// Blanket implementation so `&M`, `Box<M>` and `Arc<M>` can be used wherever a
/// measure is expected.
impl<M: AssociationMeasure + ?Sized> AssociationMeasure for &M {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn degree_from_overlap(&self, overlap: &LevelOverlap) -> f64 {
        (**self).degree_from_overlap(overlap)
    }
    fn degree(&self, a: &CellSetSequence, b: &CellSetSequence) -> f64 {
        (**self).degree(a, b)
    }
    fn upper_bound(&self, query_sizes: &[usize], overlap_caps: &[usize]) -> f64 {
        (**self).upper_bound(query_sizes, overlap_caps)
    }
}

/// Helper shared by the concrete measures: the Dice-style per-level ratio
/// `overlap / (size_a + size_b)`, zero when either side is empty.
#[inline]
pub(crate) fn dice_ratio(stat: LevelStat) -> f64 {
    if stat.size_a == 0 || stat.size_b == 0 {
        0.0
    } else {
        stat.overlap as f64 / (stat.size_a + stat.size_b) as f64
    }
}

/// Helper: the Jaccard per-level ratio `overlap / |union|`.
#[inline]
pub(crate) fn jaccard_ratio(stat: LevelStat) -> f64 {
    let union = stat.size_a + stat.size_b - stat.overlap;
    if union == 0 {
        0.0
    } else {
        stat.overlap as f64 / union as f64
    }
}

#[cfg(test)]
pub(crate) mod test_support {
    use super::*;
    use crate::cell::{CellSet, StCell};
    use crate::spatial::SpIndex;

    /// A small 2-level hierarchy and three sequences used by measure tests:
    /// `a` and `b` overlap heavily, `a` and `c` only at the coarse level.
    pub fn fixtures() -> (SpIndex, CellSetSequence, CellSetSequence, CellSetSequence) {
        let sp = SpIndex::uniform(2, &[3]).unwrap();
        let b0 = sp.base_units()[0];
        let b1 = sp.base_units()[1];
        let b3 = sp.base_units()[3];
        let mk = |cells: Vec<StCell>| {
            CellSetSequence::from_base_cells(&sp, &CellSet::from_cells(cells)).unwrap()
        };
        let a = mk(vec![StCell::new(0, b0), StCell::new(1, b0), StCell::new(2, b1)]);
        let b = mk(vec![StCell::new(0, b0), StCell::new(1, b0), StCell::new(2, b0)]);
        let c = mk(vec![StCell::new(0, b1), StCell::new(5, b3)]);
        (sp, a, b, c)
    }

    /// Checks the three Section 3.2 axioms for a measure on the fixtures.
    pub fn check_axioms<M: AssociationMeasure>(measure: &M) {
        let (_sp, a, b, c) = fixtures();
        let dab = measure.degree(&a, &b);
        let dac = measure.degree(&a, &c);
        let daa = measure.degree(&a, &a);
        // Normalisation.
        for d in [dab, dac, daa] {
            assert!((0.0..=1.0).contains(&d), "{} out of range: {d}", measure.name());
        }
        // Self similarity dominates.
        assert!(daa >= dab && daa >= dac);
        // The heavily-overlapping pair scores higher than the barely-overlapping one.
        assert!(dab > dac, "{}: {dab} should exceed {dac}", measure.name());
        // Symmetry (all concrete measures here are symmetric).
        assert!((measure.degree(&b, &a) - dab).abs() < 1e-12);
        // Upper bound soundness on the fixture: cap = real overlap per level.
        let overlap = LevelOverlap::from_sequences(&a, &b);
        let caps: Vec<usize> = overlap.iter().map(|(_, s)| s.overlap).collect();
        let sizes: Vec<usize> = overlap.iter().map(|(_, s)| s.size_a).collect();
        let ub = measure.upper_bound(&sizes, &caps);
        assert!(
            ub >= dab - 1e-12,
            "{}: upper bound {ub} must dominate degree {dab}",
            measure.name()
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dice_ratio_handles_empty_sides() {
        assert_eq!(dice_ratio(LevelStat { overlap: 0, size_a: 0, size_b: 5 }), 0.0);
        assert_eq!(dice_ratio(LevelStat { overlap: 0, size_a: 5, size_b: 0 }), 0.0);
        assert!((dice_ratio(LevelStat { overlap: 2, size_a: 2, size_b: 2 }) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn jaccard_ratio_handles_empty_union() {
        assert_eq!(jaccard_ratio(LevelStat { overlap: 0, size_a: 0, size_b: 0 }), 0.0);
        assert!(
            (jaccard_ratio(LevelStat { overlap: 1, size_a: 2, size_b: 2 }) - 1.0 / 3.0).abs()
                < 1e-12
        );
    }

    #[test]
    fn default_upper_bound_caps_overlap_at_query_size() {
        let m = DiceAdm::uniform(2);
        // Cap larger than the query size must be clamped.
        let ub = m.upper_bound(&[2, 2], &[10, 10]);
        let exact_self = m.degree_from_overlap(&LevelOverlap::from_stats(vec![
            LevelStat { overlap: 2, size_a: 2, size_b: 2 },
            LevelStat { overlap: 2, size_a: 2, size_b: 2 },
        ]));
        assert!((ub - exact_self).abs() < 1e-12);
    }
}
