//! The extensible association degree measure of Equation 7.1.

use super::{dice_ratio, AssociationMeasure};
use crate::ajpi::LevelOverlap;
use crate::error::{ModelError, Result};
use serde::{Deserialize, Serialize};

/// The paper's experimental ADM (Equation 7.1):
///
/// ```text
///                Σ_l  l^u · ( |P^l_ab| / (|P^l_a| + |P^l_b|) )^v
/// deg(e_a,e_b) = ───────────────────────────────────────────────
///                                  max
/// ```
///
/// where `max = Σ_l l^u · (1/2)^v` is the normalisation factor (the per-level
/// Dice-style ratio can never exceed 1/2), and `u, v > 1` trade off the weight of
/// the AjPI *level* against the AjPI *duration*.  The defaults are `u = v = 2`,
/// the values used throughout Chapter 7 unless stated otherwise.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PaperAdm {
    /// Exponent on the level (`u > 1`); larger values favour finer-level AjPIs.
    pub u: f64,
    /// Exponent on the duration ratio (`v > 1`); larger values favour longer AjPIs.
    pub v: f64,
    num_levels: usize,
    max: f64,
    name: String,
}

impl PaperAdm {
    /// Creates the measure for an sp-index of the given height.
    pub fn new(num_levels: usize, u: f64, v: f64) -> Result<Self> {
        if num_levels == 0 {
            return Err(ModelError::InvalidMeasureParameter("num_levels must be positive".into()));
        }
        if u < 1.0 || v < 1.0 || u.is_nan() || v.is_nan() {
            return Err(ModelError::InvalidMeasureParameter(format!(
                "u and v must be >= 1 (got u={u}, v={v})"
            )));
        }
        let max: f64 = (1..=num_levels).map(|l| (l as f64).powf(u) * 0.5f64.powf(v)).sum();
        Ok(PaperAdm { u, v, num_levels, max, name: format!("paper-adm(u={u},v={v})") })
    }

    /// The default parameterisation used by the experiments (`u = v = 2`).
    pub fn default_for(num_levels: usize) -> Self {
        PaperAdm::new(num_levels, 2.0, 2.0).expect("default parameters are valid")
    }

    /// Number of sp-index levels this measure was constructed for.
    pub fn num_levels(&self) -> usize {
        self.num_levels
    }
}

impl AssociationMeasure for PaperAdm {
    fn name(&self) -> &str {
        &self.name
    }

    fn degree_from_overlap(&self, overlap: &LevelOverlap) -> f64 {
        debug_assert_eq!(overlap.num_levels(), self.num_levels);
        let mut score = 0.0;
        for (level, stat) in overlap.iter() {
            let ratio = dice_ratio(stat);
            if ratio > 0.0 {
                score += (level as f64).powf(self.u) * ratio.powf(self.v);
            }
        }
        (score / self.max).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adm::test_support::{check_axioms, fixtures};
    use crate::ajpi::LevelStat;

    #[test]
    fn construction_validates_parameters() {
        assert!(PaperAdm::new(0, 2.0, 2.0).is_err());
        assert!(PaperAdm::new(4, 0.5, 2.0).is_err());
        assert!(PaperAdm::new(4, 2.0, 0.5).is_err());
        assert!(PaperAdm::new(4, 2.0, 2.0).is_ok());
    }

    #[test]
    fn satisfies_section_3_2_axioms() {
        check_axioms(&PaperAdm::default_for(2));
    }

    #[test]
    fn identical_entities_score_one() {
        let (_sp, a, _b, _c) = fixtures();
        let m = PaperAdm::default_for(2);
        let d = m.degree(&a, &a);
        assert!((d - 1.0).abs() < 1e-12, "self-degree should reach the normalisation max: {d}");
    }

    #[test]
    fn finer_level_overlap_scores_higher() {
        let m = PaperAdm::default_for(2);
        // Same duration, but one pair overlaps at level 2 and the other only at level 1.
        let fine = LevelOverlap::from_stats(vec![
            LevelStat { overlap: 2, size_a: 4, size_b: 4 },
            LevelStat { overlap: 2, size_a: 4, size_b: 4 },
        ]);
        let coarse = LevelOverlap::from_stats(vec![
            LevelStat { overlap: 2, size_a: 4, size_b: 4 },
            LevelStat { overlap: 0, size_a: 4, size_b: 4 },
        ]);
        assert!(m.degree_from_overlap(&fine) > m.degree_from_overlap(&coarse));
    }

    #[test]
    fn longer_overlap_scores_higher() {
        let m = PaperAdm::default_for(2);
        let long = LevelOverlap::from_stats(vec![
            LevelStat { overlap: 4, size_a: 8, size_b: 8 },
            LevelStat { overlap: 4, size_a: 8, size_b: 8 },
        ]);
        let short = LevelOverlap::from_stats(vec![
            LevelStat { overlap: 1, size_a: 8, size_b: 8 },
            LevelStat { overlap: 1, size_a: 8, size_b: 8 },
        ]);
        assert!(m.degree_from_overlap(&long) > m.degree_from_overlap(&short));
    }

    #[test]
    fn larger_trace_of_other_entity_scores_lower() {
        // Monotonicity: more presence instances for the other entity (with the
        // same overlap) means a lower association degree.
        let m = PaperAdm::default_for(1);
        let small = LevelOverlap::from_stats(vec![LevelStat { overlap: 2, size_a: 4, size_b: 2 }]);
        let large = LevelOverlap::from_stats(vec![LevelStat { overlap: 2, size_a: 4, size_b: 20 }]);
        assert!(m.degree_from_overlap(&small) > m.degree_from_overlap(&large));
    }

    #[test]
    fn u_and_v_shift_the_weighting() {
        // Higher u emphasises level; higher v penalises short durations.
        let stats = vec![
            LevelStat { overlap: 1, size_a: 10, size_b: 10 },
            LevelStat { overlap: 1, size_a: 10, size_b: 10 },
        ];
        let ov = LevelOverlap::from_stats(stats);
        let base = PaperAdm::new(2, 2.0, 2.0).unwrap().degree_from_overlap(&ov);
        let high_v = PaperAdm::new(2, 2.0, 5.0).unwrap().degree_from_overlap(&ov);
        // A short overlap is punished harder under a larger duration exponent.
        assert!(high_v < base);
    }

    #[test]
    fn degree_is_zero_for_disjoint_entities() {
        let m = PaperAdm::default_for(3);
        let ov = LevelOverlap::from_stats(vec![LevelStat { overlap: 0, size_a: 5, size_b: 7 }; 3]);
        assert_eq!(m.degree_from_overlap(&ov), 0.0);
    }
}
