//! Weighted per-level Dice similarity (the measure of Example 5.2.1).

use super::{dice_ratio, AssociationMeasure};
use crate::ajpi::LevelOverlap;
use crate::error::{ModelError, Result};
use serde::{Deserialize, Serialize};

/// A Dice-style measure: `deg = Σ_l w_l · |seq^l_a ∩ seq^l_b| / (|seq^l_a| + |seq^l_b|)`.
///
/// Example 5.2.1 uses `w = [0.1, 0.9]` over a two-level hierarchy.  Weights must
/// be non-negative and sum to at most 1, which keeps the measure within `[0, 1]`
/// (each per-level ratio is at most 1/2, so the score is in `[0, 0.5]`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DiceAdm {
    weights: Vec<f64>,
    name: String,
}

impl DiceAdm {
    /// Creates the measure from explicit per-level weights (index 0 = level 1).
    pub fn new(weights: Vec<f64>) -> Result<Self> {
        if weights.is_empty() {
            return Err(ModelError::InvalidMeasureParameter("weights must not be empty".into()));
        }
        if weights.iter().any(|&w| w < 0.0 || !w.is_finite()) {
            return Err(ModelError::InvalidMeasureParameter(
                "weights must be finite and non-negative".into(),
            ));
        }
        let sum: f64 = weights.iter().sum();
        if sum > 1.0 + 1e-9 {
            return Err(ModelError::InvalidMeasureParameter(format!(
                "weights must sum to at most 1 (got {sum})"
            )));
        }
        let name = format!("dice-adm({} levels)", weights.len());
        Ok(DiceAdm { weights, name })
    }

    /// Uniform weights `1/m` over `m` levels.
    pub fn uniform(num_levels: usize) -> Self {
        DiceAdm::new(vec![1.0 / num_levels as f64; num_levels])
            .expect("uniform weights are always valid")
    }

    /// The Example 5.2.1 parameterisation: `0.1` on level 1, `0.9` on level 2.
    pub fn paper_example() -> Self {
        DiceAdm::new(vec![0.1, 0.9]).expect("example weights are valid")
    }

    /// The per-level weights.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }
}

impl AssociationMeasure for DiceAdm {
    fn name(&self) -> &str {
        &self.name
    }

    fn degree_from_overlap(&self, overlap: &LevelOverlap) -> f64 {
        debug_assert_eq!(overlap.num_levels(), self.weights.len());
        overlap
            .iter()
            .map(|(level, stat)| self.weights[(level - 1) as usize] * dice_ratio(stat))
            .sum::<f64>()
            .clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adm::test_support::check_axioms;
    use crate::ajpi::LevelStat;

    #[test]
    fn construction_validates_weights() {
        assert!(DiceAdm::new(vec![]).is_err());
        assert!(DiceAdm::new(vec![-0.1, 0.5]).is_err());
        assert!(DiceAdm::new(vec![0.8, 0.8]).is_err());
        assert!(DiceAdm::new(vec![0.1, 0.9]).is_ok());
        assert!(DiceAdm::new(vec![f64::NAN]).is_err());
    }

    #[test]
    fn satisfies_section_3_2_axioms() {
        check_axioms(&DiceAdm::paper_example());
        check_axioms(&DiceAdm::uniform(2));
    }

    #[test]
    fn paper_example_5_2_1_weights() {
        let m = DiceAdm::paper_example();
        assert_eq!(m.weights(), &[0.1, 0.9]);
        // deg(ea, ec) from Example 5.2.1: seq1 overlap 1 of (2+2), seq2 overlap 1
        // of (2+2) → 0.1 * 0.25 + 0.9 * 0.25 = 0.25?  The thesis reports 0.15 for
        // a slightly different counting; here we verify our own formula exactly.
        let ov = LevelOverlap::from_stats(vec![
            LevelStat { overlap: 1, size_a: 2, size_b: 2 },
            LevelStat { overlap: 1, size_a: 2, size_b: 2 },
        ]);
        let d = m.degree_from_overlap(&ov);
        assert!((d - 0.25).abs() < 1e-12);
    }

    #[test]
    fn max_score_is_half_of_weight_sum() {
        let m = DiceAdm::uniform(3);
        let ov = LevelOverlap::from_stats(vec![LevelStat { overlap: 4, size_a: 4, size_b: 4 }; 3]);
        assert!((m.degree_from_overlap(&ov) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn zero_weight_level_is_ignored() {
        let m = DiceAdm::new(vec![0.0, 1.0]).unwrap();
        let only_level1 = LevelOverlap::from_stats(vec![
            LevelStat { overlap: 3, size_a: 3, size_b: 3 },
            LevelStat { overlap: 0, size_a: 3, size_b: 3 },
        ]);
        assert_eq!(m.degree_from_overlap(&only_level1), 0.0);
    }
}
