//! A configurable measure combining a level-weighting scheme with a choice of
//! per-level set-similarity ratio.  This is the "other ADMs" knob the paper
//! alludes to when it says its experiments with several other measures reveal
//! the same trends.

use super::{dice_ratio, jaccard_ratio, AssociationMeasure};
use crate::ajpi::{LevelOverlap, LevelStat};
use crate::error::{ModelError, Result};
use serde::{Deserialize, Serialize};

/// The per-level similarity ratio used by [`WeightedLevelAdm`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LevelRatio {
    /// `|a ∩ b| / (|a| + |b|)` — maximum 1/2.
    Dice,
    /// `|a ∩ b| / |a ∪ b|` — maximum 1.
    Jaccard,
    /// `|a ∩ b| / |b|` — containment of the other entity in the query; maximum 1.
    Containment,
}

impl LevelRatio {
    fn apply(self, stat: LevelStat) -> f64 {
        match self {
            LevelRatio::Dice => dice_ratio(stat),
            LevelRatio::Jaccard => jaccard_ratio(stat),
            LevelRatio::Containment => {
                if stat.size_b == 0 {
                    0.0
                } else {
                    stat.overlap as f64 / stat.size_b as f64
                }
            }
        }
    }

    fn max_value(self) -> f64 {
        match self {
            LevelRatio::Dice => 0.5,
            LevelRatio::Jaccard | LevelRatio::Containment => 1.0,
        }
    }
}

/// `deg = Σ_l l^u · ratio_l^v / max` with a selectable per-level ratio.
///
/// With `ratio = Dice` this coincides with [`PaperAdm`](super::PaperAdm); the
/// other ratios are alternative members of the Section 3.2 family.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WeightedLevelAdm {
    u: f64,
    v: f64,
    ratio: LevelRatio,
    num_levels: usize,
    max: f64,
    name: String,
}

impl WeightedLevelAdm {
    /// Creates the measure.
    pub fn new(num_levels: usize, u: f64, v: f64, ratio: LevelRatio) -> Result<Self> {
        if num_levels == 0 {
            return Err(ModelError::InvalidMeasureParameter("num_levels must be positive".into()));
        }
        if u < 1.0 || v < 1.0 || u.is_nan() || v.is_nan() {
            return Err(ModelError::InvalidMeasureParameter(format!(
                "u and v must be >= 1 (got u={u}, v={v})"
            )));
        }
        let per_level_max = ratio.max_value().powf(v);
        let max: f64 = (1..=num_levels).map(|l| (l as f64).powf(u) * per_level_max).sum();
        Ok(WeightedLevelAdm {
            u,
            v,
            ratio,
            num_levels,
            max,
            name: format!("weighted-adm({ratio:?},u={u},v={v})"),
        })
    }

    /// The ratio kind in use.
    pub fn ratio(&self) -> LevelRatio {
        self.ratio
    }
}

impl AssociationMeasure for WeightedLevelAdm {
    fn name(&self) -> &str {
        &self.name
    }

    fn degree_from_overlap(&self, overlap: &LevelOverlap) -> f64 {
        debug_assert_eq!(overlap.num_levels(), self.num_levels);
        let mut score = 0.0;
        for (level, stat) in overlap.iter() {
            let r = self.ratio.apply(stat);
            if r > 0.0 {
                score += (level as f64).powf(self.u) * r.powf(self.v);
            }
        }
        (score / self.max).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::adm::test_support::check_axioms;
    use crate::adm::PaperAdm;
    use crate::ajpi::LevelStat;

    #[test]
    fn construction_validates_parameters() {
        assert!(WeightedLevelAdm::new(0, 2.0, 2.0, LevelRatio::Dice).is_err());
        assert!(WeightedLevelAdm::new(2, 0.0, 2.0, LevelRatio::Dice).is_err());
        assert!(WeightedLevelAdm::new(2, 2.0, 2.0, LevelRatio::Jaccard).is_ok());
    }

    #[test]
    fn all_ratios_satisfy_the_axioms() {
        for ratio in [LevelRatio::Dice, LevelRatio::Jaccard, LevelRatio::Containment] {
            check_axioms(&WeightedLevelAdm::new(2, 2.0, 2.0, ratio).unwrap());
        }
    }

    #[test]
    fn dice_ratio_matches_paper_adm() {
        let w = WeightedLevelAdm::new(3, 2.0, 3.0, LevelRatio::Dice).unwrap();
        let p = PaperAdm::new(3, 2.0, 3.0).unwrap();
        let ov = LevelOverlap::from_stats(vec![
            LevelStat { overlap: 2, size_a: 5, size_b: 4 },
            LevelStat { overlap: 1, size_a: 5, size_b: 4 },
            LevelStat { overlap: 0, size_a: 5, size_b: 4 },
        ]);
        assert!((w.degree_from_overlap(&ov) - p.degree_from_overlap(&ov)).abs() < 1e-12);
    }

    #[test]
    fn containment_reaches_one_when_other_entity_is_subset() {
        let m = WeightedLevelAdm::new(1, 2.0, 2.0, LevelRatio::Containment).unwrap();
        let ov = LevelOverlap::from_stats(vec![LevelStat { overlap: 3, size_a: 10, size_b: 3 }]);
        assert!((m.degree_from_overlap(&ov) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ratio_accessor_reports_kind() {
        let m = WeightedLevelAdm::new(1, 2.0, 2.0, LevelRatio::Jaccard).unwrap();
        assert_eq!(m.ratio(), LevelRatio::Jaccard);
    }
}
