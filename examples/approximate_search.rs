//! Approximate top-k search with LSH banding (Section 8.2's first future-work
//! item, built from the banding scheme of Section 2.3), plus a top-k join over a
//! watch-list of entities.
//!
//! The example measures the recall/work trade-off of the banded index against the
//! exact MinSigTree search on a synthetic population.
//!
//! Run with `cargo run --release --example approximate_search`.

use digital_traces::index::approximate::recall;
use digital_traces::index::{BandingConfig, IndexConfig, JoinOptions, MinSigIndex};
use digital_traces::mobility_models::{HierarchyConfig, SynConfig, SynDataset};
use digital_traces::model::PaperAdm;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic population with planted co-movers.
    let dataset = SynDataset::generate(SynConfig {
        num_entities: 1_000,
        days: 7,
        hierarchy: HierarchyConfig { grid_side: 24, levels: 3, ..HierarchyConfig::default() },
        comover_fraction: 0.25,
        seed: 5,
        ..SynConfig::default()
    })?;
    let sp = dataset.sp_index();
    let index = MinSigIndex::build(sp, &dataset.traces, IndexConfig::with_hash_functions(256))?;
    let measure = PaperAdm::default_for(sp.height() as usize);
    // Query the planted co-movers (the last quarter of the entity ids): these are
    // the entities for which a strongly associated partner exists, which is the
    // regime approximate search targets ("find my near-duplicates quickly").
    let num_independent = (1_000.0 * (1.0 - 0.25)) as u64;
    let queries: Vec<_> = (num_independent..num_independent + 20)
        .map(digital_traces::EntityId)
        .filter(|e| index.contains(*e))
        .collect();

    // 2. Compare exact search against two banding configurations: an aggressive
    //    one (few, wide bands → few candidates, lower recall) and a permissive
    //    one (many, narrow bands → more candidates, higher recall).  Recall is
    //    measured on the top-3 strongest associations.
    println!(
        "{:<28} {:>10} {:>12} {:>8}",
        "configuration", "recall@3", "checked/query", "of total"
    );
    for (label, config) in [
        ("exact MinSigTree", None),
        ("banding b=8,  r=8 (strict)", Some(BandingConfig { bands: 8, rows_per_band: 8 })),
        ("banding b=32, r=4 (loose)", Some(BandingConfig { bands: 32, rows_per_band: 4 })),
    ] {
        let mut total_recall = 0.0;
        let mut total_checked = 0.0;
        for &query in &queries {
            let (exact, exact_stats) = index.top_k(query, 3, &measure)?;
            match &config {
                None => {
                    total_recall += 1.0;
                    total_checked += exact_stats.entities_checked as f64;
                }
                Some(banding) => {
                    let banded = index.banded(*banding)?;
                    let (approx, stats) = index.approximate_top_k(&banded, query, 3, &measure)?;
                    total_recall += recall(&exact, &approx);
                    total_checked += stats.entities_checked as f64;
                }
            }
        }
        let n = queries.len() as f64;
        println!(
            "{:<28} {:>10.3} {:>12.1} {:>7.1}%",
            label,
            total_recall / n,
            total_checked / n,
            100.0 * (total_checked / n) / index.num_entities() as f64
        );
    }

    // 3. A top-k join over a watch-list, evaluated on four worker threads.
    let watch_list = dataset.query_entities(50, 77);
    let (rows, join_stats) = index.top_k_join(
        &watch_list,
        &measure,
        JoinOptions { k: 5, threads: 4, ..JoinOptions::default() },
    )?;
    println!(
        "\ntop-5 join over {} watch-list entities: mean PE {:.3}, mean entities checked {:.1}",
        rows.len(),
        join_stats.mean_pruning_effectiveness,
        join_stats.mean_entities_checked
    );
    assert_eq!(rows.len(), watch_list.len());
    Ok(())
}
