//! Streaming ingestion and durability: batch new detections through an
//! `IngestBuffer` (one copy-on-write snapshot epoch per batch), keep serving
//! in-flight readers from their old epoch, persist the index to disk, and
//! restart from the file instead of rebuilding — including a paged query from
//! a memory-constrained deployment (Section 4.3 / Figure 7.6).
//!
//! Run with `cargo run --release --example streaming_updates`.

use digital_traces::index::{IndexConfig, IngestBuffer, MinSigIndex, QueryOptions};
use digital_traces::mobility_models::{HierarchyConfig, SynConfig, SynDataset};
use digital_traces::model::{EntityId, PaperAdm, Period, PresenceInstance};
use digital_traces::storage::{PagedTraceStore, PoolConfig};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. An initial dataset: the first five days of activity.
    let config = SynConfig {
        num_entities: 800,
        days: 5,
        hierarchy: HierarchyConfig { grid_side: 20, levels: 3, ..HierarchyConfig::default() },
        seed: 11,
        ..SynConfig::default()
    };
    let dataset = SynDataset::generate(config)?;
    let sp = dataset.sp_index().clone();
    let mut traces = dataset.traces.clone();
    let mut index = MinSigIndex::build(&sp, &traces, IndexConfig::with_hash_functions(128))?;
    let measure = PaperAdm::default_for(sp.height() as usize);
    println!(
        "initial index: {} entities, {} tree nodes, {:.1} KiB (epoch {})",
        index.num_entities(),
        index.stats().num_nodes,
        index.stats().index_bytes as f64 / 1024.0,
        index.epoch(),
    );

    // 2. Stream three batches of new detections: some for existing devices,
    //    some for devices never seen before.  Each batch is applied as ONE
    //    copy-on-write delta — only the new cells are hashed — and publishes
    //    one snapshot epoch; a reader holding the previous snapshot is never
    //    blocked and never sees a partial batch.
    let venues = sp.base_units().to_vec();
    let day = 24 * 60u64;
    let mut buffer = IngestBuffer::with_capacity(256);
    for batch in 0..3u64 {
        let reader = index.snapshot(); // an in-flight reader on the old epoch
        let before = reader.num_entities();
        for i in 0..50u64 {
            let entity = if i % 3 == 0 {
                EntityId(10_000 + batch * 100 + i) // a new device
            } else {
                EntityId(i * 7 % 800) // an existing device
            };
            for burst in 0..4u64 {
                let venue = venues[((batch * 31 + i * 13 + burst * 7) as usize) % venues.len()];
                let start = 5 * day + batch * day + burst * 3 * 60;
                let record = PresenceInstance::new(entity, venue, Period::new(start, start + 45)?);
                buffer.push(record);
                traces.record(record);
            }
        }
        let report = buffer.flush(&mut index)?;
        println!(
            "batch {batch}: {} records -> {} entities touched ({} new) in {:.1} ms, epoch {} \
             ({} entities indexed)",
            report.records,
            report.entities_touched,
            report.entities_inserted,
            report.flush_time_us as f64 / 1000.0,
            report.epoch,
            index.num_entities(),
        );
        assert_eq!(reader.num_entities(), before, "old epoch must be frozen");

        // Queries keep working between batches.
        let query = EntityId(14);
        let (results, stats) = index.top_k(query, 3, &measure)?;
        println!(
            "  top-3 for {query}: {:?}  (checked {} entities)",
            results.iter().map(|r| r.entity.raw()).collect::<Vec<_>>(),
            stats.entities_checked
        );
    }

    // 3. Persist the merged index and "restart": open the file instead of
    //    rebuilding.  The load re-hashes nothing and answers bit-identically.
    let path = std::env::temp_dir().join("streaming_updates_example.msix");
    let t = Instant::now();
    index.save(&path)?;
    let save_ms = t.elapsed().as_secs_f64() * 1000.0;
    let t = Instant::now();
    let reopened = MinSigIndex::open(&path)?;
    let open_ms = t.elapsed().as_secs_f64() * 1000.0;
    let t = Instant::now();
    let rebuilt = MinSigIndex::build(&sp, &traces, IndexConfig::with_hash_functions(128))?;
    let rebuild_ms = t.elapsed().as_secs_f64() * 1000.0;
    drop(rebuilt);
    println!(
        "\npersistence: save {save_ms:.1} ms, open {open_ms:.1} ms \
         (full rebuild: {rebuild_ms:.1} ms)"
    );
    let (a, _) = index.top_k(EntityId(14), 3, &measure)?;
    let (b, _) = reopened.top_k(EntityId(14), 3, &measure)?;
    assert_eq!(a, b, "reloaded index must answer bit-identically");
    println!("reloaded index answers bit-identically.");
    std::fs::remove_file(&path)?;

    // 4. The same query against a memory-constrained deployment: traces live
    //    in a paged store and only 25% of them fit in the buffer pool.
    let store = PagedTraceStore::build(&traces, 8);
    let pool = store.pool(PoolConfig::with_memory_fraction(store.data_bytes(), 0.25));
    let (paged_results, paged_stats) =
        reopened.top_k_paged(EntityId(14), 3, &measure, &store, &pool, QueryOptions::default())?;
    println!(
        "\npaged query with a 25% memory budget: {} pool misses, {:.2} ms simulated I/O",
        paged_stats.pool_misses,
        paged_stats.simulated_io_us as f64 / 1000.0
    );
    assert_eq!(paged_results.len(), a.len());
    for (x, y) in paged_results.iter().zip(a.iter()) {
        assert!((x.degree - y.degree).abs() < 1e-9, "paged and in-memory answers must agree");
    }
    println!("paged and in-memory answers agree.");
    Ok(())
}
