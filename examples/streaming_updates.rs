//! Streaming ingestion: keep the MinSigTree up to date while new digital traces
//! arrive (Section 4.2.3), and serve queries between batches — including from a
//! memory-constrained deployment where candidate traces are paged in through a
//! buffer pool (Section 4.3 / Figure 7.6).
//!
//! Run with `cargo run --release --example streaming_updates`.

use digital_traces::index::{IndexConfig, MinSigIndex, QueryOptions};
use digital_traces::mobility_models::{HierarchyConfig, SynConfig, SynDataset};
use digital_traces::model::{EntityId, PaperAdm, Period, PresenceInstance};
use digital_traces::storage::{PagedTraceStore, PoolConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. An initial dataset: the first five days of activity.
    let config = SynConfig {
        num_entities: 800,
        days: 5,
        hierarchy: HierarchyConfig { grid_side: 20, levels: 3, ..HierarchyConfig::default() },
        seed: 11,
        ..SynConfig::default()
    };
    let dataset = SynDataset::generate(config)?;
    let sp = dataset.sp_index().clone();
    let mut traces = dataset.traces.clone();
    let mut index = MinSigIndex::build(&sp, &traces, IndexConfig::with_hash_functions(128))?;
    let measure = PaperAdm::default_for(sp.height() as usize);
    println!(
        "initial index: {} entities, {} tree nodes, {:.1} KiB",
        index.num_entities(),
        index.stats().num_nodes,
        index.stats().index_bytes as f64 / 1024.0
    );

    // 2. Stream three batches of new detections: some for existing devices, some
    //    for devices never seen before.
    let venues = sp.base_units().to_vec();
    let day = 24 * 60u64;
    for batch in 0..3u64 {
        let mut updated = 0usize;
        let mut inserted = 0usize;
        for i in 0..50u64 {
            let entity = if i % 3 == 0 {
                inserted += 1;
                EntityId(10_000 + batch * 100 + i) // a new device
            } else {
                updated += 1;
                EntityId(i * 7 % 800) // an existing device
            };
            let mut trace = traces.get(entity).cloned().unwrap_or_default();
            for burst in 0..4u64 {
                let venue = venues[((batch * 31 + i * 13 + burst * 7) as usize) % venues.len()];
                let start = 5 * day + batch * day + burst * 3 * 60;
                trace.push(PresenceInstance::new(entity, venue, Period::new(start, start + 45)?));
            }
            index.update_entity(entity, &trace)?;
            traces.insert_trace(entity, trace);
        }
        println!(
            "batch {batch}: updated {updated} existing devices, inserted {inserted} new ones \
             ({} entities indexed)",
            index.num_entities()
        );

        // Queries keep working between batches.
        let query = EntityId(14);
        let (results, stats) = index.top_k(query, 3, &measure)?;
        println!(
            "  top-3 for {query}: {:?}  (checked {} entities)",
            results.iter().map(|r| r.entity.raw()).collect::<Vec<_>>(),
            stats.entities_checked
        );
    }

    // 3. The same queries against a memory-constrained deployment: traces live in
    //    a paged store and only 25% of them fit in the buffer pool.
    let store = PagedTraceStore::build(&traces, 8);
    let pool = store.pool(PoolConfig::with_memory_fraction(store.data_bytes(), 0.25));
    let (paged_results, paged_stats) =
        index.top_k_paged(EntityId(14), 3, &measure, &store, &pool, QueryOptions::default())?;
    let (mem_results, _) = index.top_k(EntityId(14), 3, &measure)?;
    println!(
        "\npaged query with a 25% memory budget: {} pool misses, {:.2} ms simulated I/O",
        paged_stats.pool_misses,
        paged_stats.simulated_io_us as f64 / 1000.0
    );
    assert_eq!(paged_results.len(), mem_results.len());
    for (a, b) in paged_results.iter().zip(mem_results.iter()) {
        assert!((a.degree - b.degree).abs() < 1e-9, "paged and in-memory answers must agree");
    }
    println!("paged and in-memory answers agree.");
    Ok(())
}
