//! Quickstart: build a spatial hierarchy, record digital traces, build the
//! MinSigTree index and answer a top-k query.
//!
//! Run with `cargo run --release --example quickstart`.

use digital_traces::index::{IndexConfig, MinSigIndex};
use digital_traces::model::{
    AssociationMeasure, EntityId, PaperAdm, Period, PresenceInstance, SpIndexBuilder, TraceSet,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the spatial hierarchy (the sp-index): two city districts, each
    //    with a handful of venues.  Level 1 = district, level 2 = venue.
    let mut builder = SpIndexBuilder::new(2);
    let downtown = builder.add_top_unit()?;
    let suburbs = builder.add_top_unit()?;
    let hotel = builder.add_child(downtown)?;
    let cafe = builder.add_child(downtown)?;
    let office = builder.add_child(downtown)?;
    let mall = builder.add_child(suburbs)?;
    let gym = builder.add_child(suburbs)?;
    let sp = builder.build()?;

    // 2. Record digital traces.  Ticks are minutes; one base temporal unit is an
    //    hour (60 ticks).  Alice and Bob spend the morning together; Carol visits
    //    the same venues but hours later; Dave never leaves the suburbs.
    let mut traces = TraceSet::new(60);
    let hour = |h: u64| Period::new(h * 60, (h + 1) * 60).unwrap();
    let alice = EntityId(1);
    let bob = EntityId(2);
    let carol = EntityId(3);
    let dave = EntityId(4);
    for (entity, unit, h) in [
        (alice, cafe, 8u64),
        (bob, cafe, 8),
        (alice, office, 9),
        (bob, office, 9),
        (alice, hotel, 20),
        (bob, hotel, 20),
        (carol, cafe, 14),
        (carol, office, 15),
        (dave, mall, 9),
        (dave, gym, 18),
    ] {
        traces.record(PresenceInstance::new(entity, unit, hour(h)));
    }

    // 3. Build the index and pick an association degree measure (Equation 7.1
    //    with the paper's default u = v = 2).
    let index = MinSigIndex::build(&sp, &traces, IndexConfig::default())?;
    let measure = PaperAdm::default_for(sp.height() as usize);

    // 4. Who is most closely associated with Alice?
    let (results, stats) = index.top_k(alice, 3, &measure)?;
    println!("Top-3 entities associated with Alice:");
    for (rank, result) in results.iter().enumerate() {
        println!("  {}. {}  degree = {:.4}", rank + 1, result.entity, result.degree);
    }
    println!(
        "checked {} of {} entities (pruning effectiveness {:.2})",
        stats.entities_checked,
        stats.total_entities,
        stats.pruning_effectiveness()
    );

    // Bob shared every hour with Alice, so he must come first.
    assert_eq!(results[0].entity, bob);
    // Carol shares venues but never hours with Alice, so she forms no AjPI at all
    // and scores below Bob.
    let carol_degree = results.iter().find(|r| r.entity == carol).map(|r| r.degree).unwrap_or(0.0);
    assert!(carol_degree < results[0].degree);

    // 5. The same measure can be queried directly, without the index, for
    //    explainability.
    let alice_seq = traces.cell_sequence(&sp, alice)?;
    let dave_seq = traces.cell_sequence(&sp, dave)?;
    println!("deg(Alice, Dave) = {:.4}", measure.degree(&alice_seq, &dave_seq));
    Ok(())
}
