//! Location-based recommendation (the paper's second application, Section 1.2):
//! recommend venues to a user based on the venues visited by their most
//! associated users ("people who move like you also went to ...").
//!
//! Run with `cargo run --release --example location_recommender`.

use digital_traces::index::{IndexConfig, MinSigIndex};
use digital_traces::mobility_models::{HierarchyConfig, SynConfig, SynDataset};
use digital_traces::model::PaperAdm;
use std::collections::BTreeMap;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Generate a small town of users under the hierarchical IM model.  The
    //    co-mover fraction guarantees communities of similar movers exist.
    let config = SynConfig {
        num_entities: 1_200,
        days: 10,
        hierarchy: HierarchyConfig { grid_side: 24, levels: 3, ..HierarchyConfig::default() },
        comover_fraction: 0.3,
        comover_fidelity: 0.6,
        seed: 7,
        ..SynConfig::default()
    };
    let dataset = SynDataset::generate(config)?;
    let sp = dataset.sp_index();
    let index = MinSigIndex::build(sp, &dataset.traces, IndexConfig::with_hash_functions(192))?;
    let measure = PaperAdm::default_for(sp.height() as usize);

    // 2. Pick a user to recommend for and fetch their most associated users.
    let user = dataset.query_entities(1, 99)[0];
    let (neighbours, stats) = index.top_k(user, 10, &measure)?;
    println!("user {user}: {} associated users found", neighbours.len());
    println!(
        "(checked {} of {} users, pruning effectiveness {:.3})\n",
        stats.entities_checked,
        stats.total_entities,
        stats.pruning_effectiveness()
    );

    // 3. Score venues the user has NOT visited by the association-weighted visit
    //    counts of the neighbours.
    let user_venues: std::collections::BTreeSet<u32> =
        dataset.traces.trace(user)?.instances().iter().map(|pi| pi.unit).collect();
    let mut venue_scores: BTreeMap<u32, f64> = BTreeMap::new();
    for neighbour in &neighbours {
        if neighbour.degree <= 0.0 {
            continue;
        }
        let trace = dataset.traces.trace(neighbour.entity)?;
        for pi in trace.instances() {
            if !user_venues.contains(&pi.unit) {
                *venue_scores.entry(pi.unit).or_default() +=
                    neighbour.degree * pi.period.length() as f64;
            }
        }
    }
    let mut ranked: Vec<(u32, f64)> = venue_scores.into_iter().collect();
    ranked.sort_by(|a, b| b.1.total_cmp(&a.1));

    println!("top recommended venues for {user} (never visited, popular among associates):");
    for (venue, score) in ranked.iter().take(5) {
        let district = sp.ancestor_at_level(*venue, 1)?;
        println!("  venue #{venue:<6} in district #{district:<4} score {score:.1}");
    }
    assert!(!ranked.is_empty(), "associated users should contribute at least one unseen venue");
    Ok(())
}
