//! Post-crime investigation (the paper's motivating application, Section 1.2):
//! given a person of interest, find the entities whose digital traces overlap
//! most with theirs before, during and after a set of incidents.
//!
//! The example simulates a city of devices under the hierarchical individual
//! mobility model, plants a small "gang" that shadows the person of interest
//! around three incident windows, and shows that the top-k query surfaces the
//! gang members while pruning most of the population.
//!
//! Run with `cargo run --release --example crime_investigation`.

use digital_traces::index::{IndexConfig, MinSigIndex};
use digital_traces::mobility_models::{HierarchyConfig, SynConfig, SynDataset};
use digital_traces::model::{EntityId, PaperAdm, Period, PresenceInstance};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A synthetic city: ~1.5k devices moving for a week over a 3-level
    //    hierarchy (quarter -> block -> venue).
    let config = SynConfig {
        num_entities: 1_500,
        days: 7,
        hierarchy: HierarchyConfig { grid_side: 32, levels: 3, ..HierarchyConfig::default() },
        comover_fraction: 0.1,
        seed: 2024,
        ..SynConfig::default()
    };
    let dataset = SynDataset::generate(config)?;
    let sp = dataset.sp_index().clone();
    let mut traces = dataset.traces.clone();

    // 2. The person of interest and a gang of four accomplices.  During three
    //    incident windows they are present at the same venues; outside the
    //    windows they move independently (their generated traces).
    let person_of_interest = EntityId(10);
    let gang: Vec<EntityId> = (0..4).map(|i| EntityId(100_000 + i)).collect();
    let venues = sp.base_units().to_vec();
    let incidents = [
        (venues[42], 24 * 60 + 20 * 60),     // day 1, 20:00
        (venues[137], 3 * 24 * 60 + 60),     // day 3, 01:00
        (venues[58], 5 * 24 * 60 + 21 * 60), // day 5, 21:00
    ];
    // Around each incident the gang spends a long evening together with the person
    // of interest (planning, the incident itself, dispersal), and they also share a
    // nightly safe-house meeting — the "association before and after the crime"
    // that Section 1.2 describes.
    let safe_house = venues[200];
    for &(venue, start) in &incidents {
        let window = Period::new(start, start + 6 * 60)?;
        traces.record(PresenceInstance::new(person_of_interest, venue, window));
        for &member in &gang {
            // Each member arrives slightly offset but overlaps the whole window.
            let offset = 10 * (member.raw() % 4 + 1);
            traces.record(PresenceInstance::new(
                member,
                venue,
                Period::new(start + offset, start + 6 * 60 + offset)?,
            ));
        }
    }
    for night in 0..7u64 {
        let start = night * 24 * 60 + 23 * 60;
        let window = Period::new(start, start + 60)?;
        traces.record(PresenceInstance::new(person_of_interest, safe_house, window));
        for &member in &gang {
            traces.record(PresenceInstance::new(member, safe_house, window));
        }
    }
    // Give gang members some independent background movement too, so they are not
    // trivially identifiable by trace length.
    for (i, &member) in gang.iter().enumerate() {
        for j in 0..20u64 {
            let venue = venues[(i * 97 + j as usize * 13) % venues.len()];
            let start = j * 6 * 60;
            traces.record(PresenceInstance::new(member, venue, Period::new(start, start + 45)?));
        }
    }

    // 3. Index the augmented trace set and run the investigation query.
    let index = MinSigIndex::build(&sp, &traces, IndexConfig::with_hash_functions(256))?;
    let measure = PaperAdm::default_for(sp.height() as usize);
    let k = 8;
    let (results, stats) = index.top_k(person_of_interest, k, &measure)?;

    println!("Entities most associated with the person of interest ({person_of_interest}):");
    for (rank, r) in results.iter().enumerate() {
        let tag = if gang.contains(&r.entity) { "  <-- planted accomplice" } else { "" };
        println!("  {:>2}. {:<10} degree = {:.4}{tag}", rank + 1, r.entity.to_string(), r.degree);
    }
    println!(
        "\nchecked {} of {} devices; pruning effectiveness {:.3}",
        stats.entities_checked,
        stats.total_entities,
        stats.pruning_effectiveness()
    );

    // All four accomplices must appear in the top-k.
    let found = gang.iter().filter(|g| results.iter().any(|r| r.entity == **g)).count();
    assert_eq!(found, gang.len(), "every planted accomplice should be recovered");
    Ok(())
}
