//! # digital-traces
//!
//! A reproduction of *Top-k Queries over Digital Traces* (Li, Yu, Koudas;
//! SIGMOD 2019) as a reusable Rust library.  This facade crate re-exports the
//! workspace's public API so downstream users can depend on a single crate:
//!
//! * [`model`] — the trace data model: spatial hierarchies, ST-cells, presence
//!   instances, adjoint presence instances, association degree measures;
//! * [`index`] — the MinSigTree index and its unified query engine;
//! * [`mobility`] — the hierarchical individual-mobility model, synthetic data
//!   generators and the analytical pruning-effectiveness model;
//! * [`baselines`] — brute-force scan, FP-growth and the bitmap baseline;
//! * [`storage`] — the paged storage substrate (external sort, buffer pool);
//! * [`experiments`] — the harness regenerating every figure of the paper.
//!
//! ## Architecture: one executor, many drivers
//!
//! Every query path — exact, paged, join/batch, sharded and approximate —
//! runs through a single **resumable** best-first executor
//! (`minsig::engine::Executor`), parameterised over a `TraceSource` that says
//! where candidate trace sequences come from during leaf evaluation
//! (`InMemorySource` borrows the index snapshot's sequence map, `PagedSource`
//! reads raw traces through the `storage` buffer pool) and over a `Bound` —
//! the k-th-degree threshold candidates must beat.  The sharded index drives
//! one executor per shard as a cooperative scheduler sharing one atomic
//! `SharedBound` per query, so cross-shard answers keep the pruning power of
//! a single tree while staying bitwise identical to unsharded execution.
//!
//! The index itself is split into an immutable, `Arc`-shareable
//! [`IndexSnapshot`] and the mutable [`MinSigIndex`] handle around it:
//! `MinSigIndex::snapshot()` hands a consistent version of the index to any
//! number of reader threads, while `update_entity`/`remove_entity` keep
//! working on the handle via copy-on-write.  Batch entry points
//! (`top_k_batch`, `top_k_join`) fan independent queries out over a thread
//! pool with a hard determinism contract: parallel results equal sequential
//! results exactly, in input order.
//!
//! ## Quickstart
//!
//! ```
//! use digital_traces::index::{IndexConfig, MinSigIndex};
//! use digital_traces::model::{EntityId, PaperAdm, Period, PresenceInstance, SpIndex, TraceSet};
//!
//! // city -> district -> building hierarchy (2 cities, 3 districts each, 4 buildings each)
//! let sp = SpIndex::uniform(2, &[3, 4]).unwrap();
//! let buildings = sp.base_units().to_vec();
//!
//! // Record a few presences: entities 1 and 2 co-occur, entity 3 is elsewhere.
//! let mut traces = TraceSet::new(60); // 60 ticks (minutes) per temporal unit
//! for (who, unit, start) in [(1u64, 0usize, 0u64), (2, 0, 30), (1, 5, 300), (2, 5, 330), (3, 20, 0)] {
//!     traces.record(PresenceInstance::new(
//!         EntityId(who),
//!         buildings[unit],
//!         Period::new(start, start + 60).unwrap(),
//!     ));
//! }
//!
//! let index = MinSigIndex::build(&sp, &traces, IndexConfig::default()).unwrap();
//! let measure = PaperAdm::default_for(sp.height() as usize);
//! let (top, stats) = index.top_k(EntityId(1), 1, &measure).unwrap();
//! assert_eq!(top[0].entity, EntityId(2));
//! assert!(stats.pruning_effectiveness() >= 0.0);
//! ```

#![warn(missing_docs)]

/// The trace data model (re-export of the `trace-model` crate).
pub mod model {
    pub use trace_model::*;
}

/// The MinSigTree index (re-export of the `minsig` crate).
pub mod index {
    pub use minsig::*;
}

/// Mobility models and data generators (re-export of the `mobility` crate).
pub mod mobility_models {
    pub use mobility::*;
}

/// Baseline approaches (re-export of the `baseline` crate).
pub mod baselines {
    pub use baseline::*;
}

/// The paged storage substrate (re-export of the `trace-storage` crate).
pub mod storage {
    pub use trace_storage::*;
}

/// The experiment harness (re-export of the `experiments` crate).
pub mod harness {
    pub use experiments::*;
}

pub use minsig::{
    BoundMode, IndexConfig, IndexSnapshot, JoinOptions, MinSigIndex, PlannerConfig, PublishPolicy,
    QueryOptions, QueryPlan, QueryStats, SchedulerConfig, SearchStats, ShardedMinSigIndex,
    ShardedSnapshot, Synopsis, TopKResult, TraceSource,
};
pub use trace_model::{
    AssociationMeasure, DiceAdm, DigitalTrace, EntityId, JaccardAdm, PaperAdm, Period,
    PresenceInstance, SpIndex, SpIndexBuilder, TraceSet,
};
